/**
 * @file
 * Parameterized property sweeps encoding the paper's cross-cutting
 * claims over the full (corner x core x workload) space at the
 * measurement level. Heavier than unit tests, lighter than the
 * bench harnesses.
 */

#include <gtest/gtest.h>

#include "core/framework.hh"
#include "power/power_model.hh"
#include "workloads/spec.hh"

namespace vmargin
{
namespace
{

/** One characterization per corner, shared across properties. */
class PaperPropertyTest
    : public ::testing::TestWithParam<sim::ChipCorner>
{
  protected:
    static CharacterizationReport
    characterize(sim::ChipCorner corner)
    {
        sim::Platform platform(sim::XGene2Params{}, corner, 1);
        CharacterizationFramework framework(&platform);
        FrameworkConfig config;
        config.workloads = {wl::findWorkload("bwaves/ref"),
                            wl::findWorkload("mcf/ref"),
                            wl::findWorkload("namd/ref")};
        config.cores = {0, 1, 4, 5};
        config.campaigns = 5;
        config.maxEpochs = 10;
        config.startVoltage = 935;
        config.endVoltage = 830;
        return framework.characterize(config);
    }

    static const CharacterizationReport &
    reportFor(sim::ChipCorner corner)
    {
        static std::map<sim::ChipCorner, CharacterizationReport>
            cache;
        auto it = cache.find(corner);
        if (it == cache.end())
            it = cache.emplace(corner, characterize(corner)).first;
        return it->second;
    }
};

TEST_P(PaperPropertyTest, SafeAboveUnsafeAboveCrash)
{
    // Region ordering: no Safe level below an Unsafe one, no
    // Unsafe level below a Crash one, per cell.
    const auto &report = reportFor(GetParam());
    for (const auto &cell : report.cells) {
        MilliVolt lowest_safe = 0, highest_unsafe = 0;
        MilliVolt lowest_unsafe = 0, highest_crash = 0;
        for (const auto &[v, region] : cell.analysis.regions) {
            switch (region) {
              case Region::Safe:
                if (!lowest_safe || v < lowest_safe)
                    lowest_safe = v;
                break;
              case Region::Unsafe:
                highest_unsafe = std::max(highest_unsafe, v);
                if (!lowest_unsafe || v < lowest_unsafe)
                    lowest_unsafe = v;
                break;
              case Region::Crash:
                highest_crash = std::max(highest_crash, v);
                break;
            }
        }
        if (highest_unsafe) {
            EXPECT_GT(lowest_safe, highest_unsafe)
                << cell.workloadId << " core " << cell.core;
        }
        if (highest_crash && lowest_unsafe) {
            EXPECT_GT(lowest_unsafe, highest_crash)
                << cell.workloadId << " core " << cell.core;
        }
    }
}

TEST_P(PaperPropertyTest, SeverityNeverExceedsItsMaximum)
{
    const auto &report = reportFor(GetParam());
    for (const auto &cell : report.cells) {
        for (const auto &[v, sev] :
             cell.analysis.severityByVoltage) {
            EXPECT_GE(sev, 0.0);
            EXPECT_LE(sev, maxSeverity());
        }
    }
}

TEST_P(PaperPropertyTest, SeverityZeroExactlyInSafeRegion)
{
    const auto &report = reportFor(GetParam());
    for (const auto &cell : report.cells) {
        for (const auto &[v, region] : cell.analysis.regions) {
            const double sev =
                cell.analysis.severityByVoltage.at(v);
            if (region == Region::Safe)
                EXPECT_EQ(sev, 0.0)
                    << cell.workloadId << "@" << v;
            else
                EXPECT_GT(sev, 0.0)
                    << cell.workloadId << "@" << v;
        }
    }
}

TEST_P(PaperPropertyTest, GuardbandAlwaysPositive)
{
    // Every cell leaves real margin below the 980 mV nominal.
    const auto &report = reportFor(GetParam());
    for (const auto &cell : report.cells) {
        EXPECT_GE(cell.analysis.guardband(980), 45)
            << cell.workloadId << " core " << cell.core;
        EXPECT_LE(cell.analysis.guardband(980), 140)
            << cell.workloadId << " core " << cell.core;
    }
}

TEST_P(PaperPropertyTest, SameWorkloadOrderingOnEveryCore)
{
    // mcf < bwaves < namd in Vmin on every characterized core.
    const auto &report = reportFor(GetParam());
    for (CoreId core : {0, 1, 4, 5}) {
        const MilliVolt mcf =
            report.cell("mcf/ref", core).analysis.vmin;
        const MilliVolt bwaves =
            report.cell("bwaves/ref", core).analysis.vmin;
        const MilliVolt namd =
            report.cell("namd/ref", core).analysis.vmin;
        EXPECT_LE(mcf, bwaves) << "core " << core;
        EXPECT_LE(bwaves, namd) << "core " << core;
    }
}

INSTANTIATE_TEST_SUITE_P(AllCorners, PaperPropertyTest,
                         ::testing::Values(sim::ChipCorner::TTT,
                                           sim::ChipCorner::TFF,
                                           sim::ChipCorner::TSS));

/** Power-model property sweep over the operating grid. */
class PowerGridTest
    : public ::testing::TestWithParam<std::tuple<int, int>>
{
};

TEST_P(PowerGridTest, PowerMonotoneInVoltageAndFrequency)
{
    const auto [v, f] = GetParam();
    const power::PowerModel model;
    power::CoreOperatingPoint op;
    op.voltage = v;
    op.frequency = f;
    op.activity = 0.6;

    power::CoreOperatingPoint lower_v = op;
    lower_v.voltage = v - 5;
    EXPECT_LT(model.corePower(lower_v), model.corePower(op));

    if (f > 300) {
        power::CoreOperatingPoint lower_f = op;
        lower_f.frequency = f - 300;
        EXPECT_LT(model.corePower(lower_f), model.corePower(op));
    }
}

INSTANTIATE_TEST_SUITE_P(
    Grid, PowerGridTest,
    ::testing::Combine(::testing::Values(980, 915, 885, 760),
                       ::testing::Values(2400, 1800, 1200, 300)));

} // namespace
} // namespace vmargin
