/**
 * @file
 * The telemetry plane's out-of-band contract, end to end:
 *
 *  - enabling a telemetry sink must not move a single byte of the
 *    serialized campaign or fleet report (under fault injection, at
 *    several worker counts);
 *  - the exact-class counter section must come out byte-identical
 *    for workers {1, 2, 8} — the telemetry side of the determinism
 *    contract the executor's report hash asserts;
 *  - the JSONL artifact itself must exist, grow one line per flush,
 *    and carry the metric keys CI gates on.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "core/executor.hh"
#include "core/fleet.hh"
#include "core/framework.hh"
#include "core/resultstore.hh"
#include "obs/metrics.hh"
#include "workloads/spec.hh"

namespace vmargin
{
namespace
{

sim::FaultPlanConfig
hostilePlan()
{
    sim::FaultPlanConfig plan;
    plan.i2cWriteFailure = 0.10;
    plan.watchdogMiss = 0.05;
    plan.managementHang = 0.002;
    plan.staleRead = 0.05;
    plan.seed = 99;
    return plan;
}

FrameworkConfig
sweepConfig()
{
    FrameworkConfig config;
    config.workloads = {wl::findWorkload("bwaves/ref"),
                        wl::findWorkload("leslie3d/ref")};
    config.cores = {0, 2, 4, 6};
    config.campaigns = 2;
    config.maxEpochs = 8;
    config.startVoltage = 930;
    config.endVoltage = 870;
    return config;
}

/** One faulted sweep; returns the serialized report and, via
 *  @p counters_out, the exact-counter JSON it accumulated. */
std::string
sweep(int workers, const std::string &telemetry_path,
      std::string *counters_out = nullptr)
{
    obs::Registry::global().reset();
    sim::Platform platform(sim::XGene2Params{}, sim::ChipCorner::TTT,
                           7);
    platform.installFaultPlan(hostilePlan());
    CharacterizationFramework framework(&platform);
    FrameworkConfig config = sweepConfig();
    config.workers = workers;
    config.telemetryPath = telemetry_path;
    const auto report = framework.characterize(config);
    if (counters_out)
        *counters_out = obs::Registry::global().countersJson();
    return serializeReport(report);
}

std::vector<std::string>
linesOf(const std::string &path)
{
    std::ifstream in(path);
    std::vector<std::string> out;
    for (std::string line; std::getline(in, line);)
        out.push_back(line);
    return out;
}

TEST(Telemetry, SinkDoesNotPerturbTheReport)
{
    const std::string path = "/tmp/vmargin_telemetry_onoff.jsonl";
    std::remove(path.c_str());
    for (const int workers : {1, 2, 8}) {
        const std::string off = sweep(workers, "");
        const std::string on = sweep(workers, path);
        EXPECT_EQ(on, off)
            << "telemetry at " << workers
            << " workers moved report bytes — it must be strictly "
               "out-of-band";
    }
    std::remove(path.c_str());
}

TEST(Telemetry, ExactCountersIdenticalAcrossWorkerCounts)
{
    std::string one, two, eight;
    const std::string report_one = sweep(1, "", &one);
    const std::string report_two = sweep(2, "", &two);
    const std::string report_eight = sweep(8, "", &eight);
    // Guard: the runs themselves must agree before the counters can.
    ASSERT_EQ(report_two, report_one);
    ASSERT_EQ(report_eight, report_one);
    EXPECT_EQ(two, one)
        << "exact counters must not depend on the worker count";
    EXPECT_EQ(eight, one)
        << "exact counters must not depend on the worker count";
    EXPECT_NE(one.find("\"executor.cells_planned\":8"),
              std::string::npos)
        << one;
}

TEST(Telemetry, JsonlArtifactCarriesTheGatedKeys)
{
    const std::string path = "/tmp/vmargin_telemetry_keys.jsonl";
    std::remove(path.c_str());
    (void)sweep(4, path);
    const auto lines = linesOf(path);
    ASSERT_GE(lines.size(), 2u)
        << "expected at least one phase flush plus the final drain";
    const std::string &last = lines.back();
    EXPECT_NE(last.find("\"schema\":\"vmargin-telemetry-v1\""),
              std::string::npos);
    EXPECT_NE(last.find("\"executor.cells_planned\":8"),
              std::string::npos);
    EXPECT_NE(last.find("\"executor.cells_fresh\":8"),
              std::string::npos);
    EXPECT_NE(last.find("executor.plan"), std::string::npos);
    EXPECT_NE(last.find("threadpool.tasks"), std::string::npos);
    std::remove(path.c_str());
}

TEST(Telemetry, FleetReportUnmovedBySink)
{
    const std::string path = "/tmp/vmargin_telemetry_fleet.jsonl";
    std::remove(path.c_str());

    const auto fleetSweep = [&](const std::string &telemetry) {
        obs::Registry::global().reset();
        sim::Platform platform(sim::XGene2Params{},
                               sim::ChipCorner::TTT, 1);
        FleetConfig config;
        config.chips = parseFleetSpec({"TTT", "TFF:2"});
        config.framework = sweepConfig();
        config.framework.workers = 4;
        config.framework.telemetryPath = telemetry;
        FleetExecutor executor(&platform);
        return executor.run(config).serialize();
    };

    const std::string off = fleetSweep("");
    const std::string on = fleetSweep(path);
    EXPECT_EQ(on, off);
    const auto lines = linesOf(path);
    ASSERT_FALSE(lines.empty());
    EXPECT_NE(lines.back().find("\"fleet.cells_measured\":16"),
              std::string::npos)
        << lines.back();
    std::remove(path.c_str());
}

} // namespace
} // namespace vmargin
