/**
 * @file
 * End-to-end pipeline tests: characterize -> profile -> train ->
 * predict -> schedule, on a reduced population, mirroring the
 * paper's full flow (Figure 6 plus section 5).
 */

#include <gtest/gtest.h>

#include "core/framework.hh"
#include "core/mitigation.hh"
#include "core/predictor.hh"
#include "core/tradeoff.hh"
#include "sched/allocator.hh"
#include "sched/governor.hh"
#include "workloads/spec.hh"

namespace vmargin
{
namespace
{

class EndToEndTest : public ::testing::Test
{
  protected:
    static void
    SetUpTestSuite()
    {
        platform_ = new sim::Platform(sim::XGene2Params{},
                                      sim::ChipCorner::TTT, 1);
        CharacterizationFramework framework(platform_);
        FrameworkConfig config;
        config.workloads = wl::headlineSuite();
        config.cores = {0, 1, 2, 3, 4, 5, 6, 7};
        config.campaigns = 4;
        config.maxEpochs = 8;
        config.startVoltage = 930;
        config.endVoltage = 830;
        report_ = new CharacterizationReport(
            framework.characterize(config));
    }

    static void
    TearDownTestSuite()
    {
        delete report_;
        delete platform_;
        report_ = nullptr;
        platform_ = nullptr;
    }

    static sim::Platform *platform_;
    static CharacterizationReport *report_;
};

sim::Platform *EndToEndTest::platform_ = nullptr;
CharacterizationReport *EndToEndTest::report_ = nullptr;

TEST_F(EndToEndTest, EveryCellCharacterized)
{
    EXPECT_EQ(report_->cells.size(), 80u);
    for (const auto &cell : report_->cells) {
        EXPECT_GE(cell.analysis.vmin, 850) << cell.workloadId;
        EXPECT_LE(cell.analysis.vmin, 925) << cell.workloadId;
        EXPECT_TRUE(cell.analysis.sawCrash())
            << cell.workloadId << " core " << cell.core;
    }
}

TEST_F(EndToEndTest, GuardbandsMatchThePaperBand)
{
    // Most robust core's Vmin across the 10 benchmarks: the paper's
    // Figure 3 band for TTT is 860-885 mV.
    MilliVolt lo = 10000, hi = 0;
    for (const auto &w : wl::headlineSuite()) {
        const MilliVolt vmin = report_->bestCoreVmin(w.id());
        lo = std::min(lo, vmin);
        hi = std::max(hi, vmin);
    }
    EXPECT_GE(lo, 850);
    EXPECT_LE(hi, 890);
    EXPECT_GE(hi - lo, 10) << "workload-to-workload variation";
}

TEST_F(EndToEndTest, Pmd2MostRobustInMeasurement)
{
    // Figure 4's PMD pattern must survive the full measurement
    // pipeline, not just the silicon model.
    auto pmd_avg = [&](PmdId p) {
        double sum = 0;
        int n = 0;
        for (const auto &w : wl::headlineSuite()) {
            sum += report_->cell(w.id(), 2 * p).analysis.vmin +
                   report_->cell(w.id(), 2 * p + 1).analysis.vmin;
            n += 2;
        }
        return sum / n;
    };
    EXPECT_LT(pmd_avg(2), pmd_avg(0));
    EXPECT_LT(pmd_avg(2), pmd_avg(1));
    EXPECT_LT(pmd_avg(2), pmd_avg(3));
}

TEST_F(EndToEndTest, SdcBeforeCorrectedErrorsInObservations)
{
    // The section 3.4 X-Gene 2 signature at the observation level:
    // no benchmark shows a CE-only level above the first SDC level.
    for (const auto &w : wl::headlineSuite()) {
        const auto &analysis = report_->cell(w.id(), 0).analysis;
        MilliVolt first_sdc = 0, first_ce_alone = 0;
        for (const auto &[v, sets] : analysis.runsByVoltage) {
            for (const auto &set : sets) {
                if (set.has(Effect::SDC))
                    first_sdc = std::max(first_sdc, v);
                if (set.has(Effect::CE) && !set.has(Effect::SDC) &&
                    !set.has(Effect::AC) && !set.has(Effect::SC))
                    first_ce_alone = std::max(first_ce_alone, v);
            }
        }
        if (first_ce_alone > 0 && first_sdc > 0) {
            EXPECT_LE(first_ce_alone, first_sdc + 5)
                << w.id() << ": CE-alone appeared well above SDC "
                              "(Itanium-style, wrong platform)";
        }
    }
}

TEST_F(EndToEndTest, TradeoffLadderDeliversPaperScaleSavings)
{
    // Place 8 of the benchmarks on the 8 cores and walk Figure 9.
    std::vector<Placement> placements;
    const auto suite = wl::headlineSuite();
    for (CoreId c = 0; c < 8; ++c)
        placements.push_back(
            Placement{suite[static_cast<size_t>(c)].id(), c});

    const TradeoffExplorer explorer(*report_, 760);
    const auto ladder = explorer.ladder(placements);
    ASSERT_EQ(ladder.size(), 5u);
    // Full-speed point saves ~10-15% (paper: 12.8%).
    EXPECT_GT(ladder[0].savingsPercent(), 8.0);
    EXPECT_LT(ladder[0].savingsPercent(), 20.0);
    // Two PMDs slowed: paper reports 38.8%.
    EXPECT_GT(ladder[2].savingsPercent(), 30.0);
    EXPECT_LT(ladder[2].savingsPercent(), 45.0);
    // Everything slowed: ~70% power at half performance.
    EXPECT_GT(ladder[4].savingsPercent(), 60.0);
    EXPECT_DOUBLE_EQ(ladder[4].performanceRel, 0.5);
    EXPECT_EQ(ladder[4].voltage, 760);
}

TEST_F(EndToEndTest, AllocatorLowersTheDomainVoltage)
{
    const sched::TaskAllocator allocator(*report_);
    std::vector<std::string> tasks;
    for (const auto &w : wl::headlineSuite())
        if (tasks.size() < 8)
            tasks.push_back(w.id());
    const auto smart = allocator.allocate(tasks);
    const auto naive = allocator.allocateNaive(tasks);
    EXPECT_LE(smart.requiredVoltage, naive.requiredVoltage);
}

TEST_F(EndToEndTest, GovernorDrivenBySeverityPredictors)
{
    Profiler profiler(platform_);
    const auto profiles =
        profiler.profileSuite(wl::headlineSuite(), 0, 8);

    const auto ds0 = buildSeverityDataset(profiles, *report_, 0);
    const auto ds4 = buildSeverityDataset(profiles, *report_, 4);
    LinearPredictor p0, p4;
    p0.fit(ds0.x, ds0.y, 5, 8);
    p4.fit(ds4.x, ds4.y, 5, 8);

    sched::GovernorConfig config;
    config.guardSteps = 1;
    sched::VoltageGovernor governor(config);
    governor.setPredictor(0, std::move(p0));
    governor.setPredictor(4, std::move(p4));

    // Observe bwaves on both cores.
    sched::CoreObservation on0, on4;
    on0.core = 0;
    on4.core = 4;
    for (size_t e = 0; e < sim::kNumPmuEvents; ++e) {
        on0.counterFeatures.push_back(profiles[0].perKilo(
            static_cast<sim::PmuEvent>(e)));
        on4.counterFeatures = on0.counterFeatures;
    }

    const MilliVolt both = governor.decide({on0, on4});
    const MilliVolt robust_only = governor.decide({on4});
    EXPECT_LT(both, 980) << "the governor must harvest some margin";
    EXPECT_LE(robust_only, both)
        << "dropping the sensitive core can only help";
    // The decision must stay at or above the measured Vmin minus a
    // step (the governor is calibrated to be safe).
    EXPECT_GE(both,
              report_->cell("bwaves/ref", 0).analysis.vmin - 5);
}

TEST_F(EndToEndTest, MitigationAdviceFollowsSeverity)
{
    const auto &analysis = report_->cell("bwaves/ref", 0).analysis;
    const auto advice_at = [&](MilliVolt v) {
        return adviseMitigation(analysis.severityByVoltage.at(v));
    };
    // At Vmin everything is safe.
    EXPECT_EQ(advice_at(analysis.vmin).action,
              MitigationAction::None);
    // At the crash floor the range is unusable.
    const MilliVolt bottom =
        analysis.severityByVoltage.begin()->first;
    EXPECT_EQ(advice_at(bottom).action, MitigationAction::Unusable);
}

} // namespace
} // namespace vmargin
