/**
 * @file
 * Fleet determinism suite: the three-chip fleet report must be
 * byte-identical for any worker count AND any chip enumeration
 * order, a single-chip fleet must reproduce the lone
 * CampaignExecutor's report byte for byte, and a budget-chopped
 * fleet sweep resumed through the shared journal — under a hostile
 * management-plane fault plan — must reassemble the single-shot
 * report exactly.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <string>
#include <vector>

#include "core/executor.hh"
#include "core/fleet.hh"
#include "core/resultstore.hh"
#include "workloads/spec.hh"

namespace vmargin
{
namespace
{

sim::FaultPlanConfig
hostilePlan()
{
    sim::FaultPlanConfig plan;
    plan.i2cWriteFailure = 0.10;
    plan.watchdogMiss = 0.05;
    plan.managementHang = 0.002;
    plan.staleRead = 0.05;
    plan.seed = 99;
    return plan;
}

FrameworkConfig
sweepConfig()
{
    FrameworkConfig config;
    config.workloads = {wl::findWorkload("bwaves/ref"),
                        wl::findWorkload("leslie3d/ref")};
    config.cores = {0, 2, 4, 6};
    config.campaigns = 2;
    config.maxEpochs = 8;
    config.startVoltage = 930;
    config.endVoltage = 870;
    return config;
}

sim::Platform
templatePlatform()
{
    sim::Platform platform(sim::XGene2Params{}, sim::ChipCorner::TTT,
                           1);
    platform.installFaultPlan(hostilePlan());
    return platform;
}

FleetReport
fleetSweep(const std::vector<std::string> &chip_specs, int workers,
           const std::string &journal_path = "", int cell_budget = 0)
{
    sim::Platform platform = templatePlatform();
    FleetConfig config;
    config.chips = parseFleetSpec(chip_specs);
    config.framework = sweepConfig();
    config.framework.workers = workers;
    config.framework.journalPath = journal_path;
    config.framework.cellBudget = cell_budget;
    FleetExecutor executor(&platform);
    return executor.run(config);
}

TEST(FleetExecutor, ThreeChipReportIdenticalAcrossWorkerCounts)
{
    const std::vector<std::string> chips = {"TTT", "TFF:2", "TSS:3"};
    const FleetReport one = fleetSweep(chips, 1);
    ASSERT_EQ(one.chips.size(), 3u);
    ASSERT_EQ(one.chips[0].report.cells.size(), 8u);

    const std::string bytes = one.serialize();
    EXPECT_EQ(fleetSweep(chips, 2).serialize(), bytes)
        << "2 workers must serialize byte-identically to 1";
    EXPECT_EQ(fleetSweep(chips, 8).serialize(), bytes)
        << "8 workers must serialize byte-identically to 1";
}

TEST(FleetExecutor, ReportIndependentOfChipEnumerationOrder)
{
    const std::string bytes =
        fleetSweep({"TTT", "TFF:2", "TSS:3"}, 4).serialize();
    EXPECT_EQ(fleetSweep({"TSS:3", "TTT", "TFF:2"}, 4).serialize(),
              bytes);
    EXPECT_EQ(fleetSweep({"TFF:2", "TSS:3", "TTT"}, 8).serialize(),
              bytes);
}

TEST(FleetExecutor, SingleChipFleetMatchesCampaignExecutor)
{
    // A fleet of one must collapse to exactly the single-chip
    // executor: same chip identity, same report bytes.
    const FleetReport fleet = fleetSweep({"TFF:2"}, 4);
    ASSERT_EQ(fleet.chips.size(), 1u);

    sim::Platform platform(sim::XGene2Params{}, sim::ChipCorner::TFF,
                           2);
    platform.installFaultPlan(hostilePlan());
    FrameworkConfig config = sweepConfig();
    config.workers = 4;
    CampaignExecutor executor(&platform);
    const CharacterizationReport solo = executor.run(config);

    EXPECT_EQ(serializeReport(fleet.chips[0].report),
              serializeReport(solo));
    EXPECT_EQ(fleet.chips[0].report.summaryCsv(), solo.summaryCsv());
}

TEST(FleetExecutor, SharedJournalResumesWholeFleet)
{
    const std::string path = "/tmp/vmargin_fleet_journal_resume";
    std::remove(path.c_str());
    const std::vector<std::string> chips = {"TTT", "TFF:2"};

    const FleetReport fresh = fleetSweep(chips, 8, path);
    const FleetReport resumed = fleetSweep(chips, 1, path);
    // Every (chip, workload, core) cell must come from the journal.
    for (const auto &entry : resumed.chips)
        EXPECT_EQ(entry.report.telemetry.journalReplays, 8u);
    EXPECT_EQ(resumed.serialize(), fresh.serialize());
    std::remove(path.c_str());
}

TEST(FleetExecutor, ShuffledChipOrderResumesTheSameJournal)
{
    const std::string path = "/tmp/vmargin_fleet_journal_shuffle";
    std::remove(path.c_str());

    const FleetReport fresh =
        fleetSweep({"TTT", "TFF:2", "TSS:3"}, 4, path);
    // A reordered --chip list binds to the same header and replays
    // every cell.
    const FleetReport resumed =
        fleetSweep({"TSS:3", "TFF:2", "TTT"}, 2, path);
    for (const auto &entry : resumed.chips)
        EXPECT_EQ(entry.report.telemetry.journalReplays, 8u);
    EXPECT_EQ(resumed.serialize(), fresh.serialize());
    std::remove(path.c_str());
}

TEST(FleetExecutor, BudgetedSessionsMatchSingleShot)
{
    // Kill+resume: a fleet-wide budget of 5 fresh cells per session
    // chops 24 cells into 5 sessions; the reassembled report must
    // match the uninterrupted sweep byte for byte under the hostile
    // fault plan.
    const std::string path = "/tmp/vmargin_fleet_budget_journal";
    std::remove(path.c_str());
    const std::vector<std::string> chips = {"TTT", "TFF:2", "TSS:3"};

    const FleetReport reference = fleetSweep(chips, 4);

    FleetReport report;
    int sessions = 0;
    do {
        report = fleetSweep(chips, 4, path, 5);
        ++sessions;
        ASSERT_LE(sessions, 5) << "24 cells / 5 per session";
    } while (!report.complete);

    EXPECT_EQ(sessions, 5);
    EXPECT_EQ(report.serialize(), reference.serialize());
    std::remove(path.c_str());
}

TEST(FleetExecutor, SharedCacheServesEveryChipApart)
{
    // One cache file serves the whole fleet: a second sweep re-runs
    // nothing, and each chip's cells come back from its own keys.
    const std::string path = "/tmp/vmargin_fleet_cache";
    std::remove(path.c_str());
    const std::vector<std::string> chips = {"TTT", "TFF:2"};

    sim::Platform platform = templatePlatform();
    FleetConfig config;
    config.chips = parseFleetSpec(chips);
    config.framework = sweepConfig();
    config.framework.workers = 4;
    config.framework.cachePath = path;

    FleetExecutor executor(&platform);
    const FleetReport fresh = executor.run(config);
    const FleetReport cached = executor.run(config);
    for (const auto &entry : cached.chips)
        EXPECT_EQ(entry.report.telemetry.cacheHits, 8u);
    EXPECT_EQ(cached.serialize(), fresh.serialize());
    std::remove(path.c_str());
}

TEST(FleetExecutorDeath, RefusesJournalFromDifferentFleet)
{
    const std::string path = "/tmp/vmargin_fleet_journal_mismatch";
    std::remove(path.c_str());
    (void)fleetSweep({"TTT", "TFF:2"}, 2, path);
    EXPECT_EXIT((void)fleetSweep({"TTT", "TSS:3"}, 2, path),
                ::testing::ExitedWithCode(1),
                "different experiment");
    std::remove(path.c_str());
}

} // namespace
} // namespace vmargin
