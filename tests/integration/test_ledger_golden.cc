/**
 * @file
 * Golden compatibility of the RunLedger refactor: the LedgerView
 * derivation pipeline must reproduce, byte for byte, what the
 * pre-refactor per-cell loops produced — across worker counts, with
 * fault injection on, through journal resume and cache-served
 * sweeps, and through the serialize/deserialize round trip.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <string>
#include <vector>

#include "core/framework.hh"
#include "core/ledger.hh"
#include "core/resultstore.hh"
#include "core/severity.hh"
#include "sim/platform.hh"
#include "workloads/spec.hh"

namespace vmargin
{
namespace
{

/**
 * The pre-refactor analyzeRegions(), kept verbatim as the golden
 * reference: a per-cell walk over the full run list. LedgerView must
 * derive exactly this from a single streamed pass.
 */
RegionAnalysis
legacyAnalyzeRegions(const std::vector<ClassifiedRun> &runs,
                     const std::string &workload_id, CoreId core,
                     const SeverityWeights &weights)
{
    RegionAnalysis analysis;
    for (const auto &run : runs) {
        if (run.key.workloadId != workload_id || run.key.core != core)
            continue;
        analysis.runsByVoltage[run.key.voltage].push_back(
            run.effects);
    }
    EXPECT_FALSE(analysis.runsByVoltage.empty());

    for (const auto &[voltage, effect_sets] :
         analysis.runsByVoltage) {
        bool any_abnormal = false;
        bool any_crash = false;
        for (const auto &set : effect_sets) {
            any_abnormal = any_abnormal || !set.normal();
            any_crash = any_crash || set.has(Effect::SC);
        }
        Region region = Region::Safe;
        if (any_crash)
            region = Region::Crash;
        else if (any_abnormal)
            region = Region::Unsafe;
        analysis.regions[voltage] = region;
        analysis.severityByVoltage[voltage] =
            severity(effect_sets, weights);

        if (any_crash && voltage > analysis.highestCrashVoltage)
            analysis.highestCrashVoltage = voltage;
        if (any_abnormal && voltage > analysis.highestAbnormalVoltage)
            analysis.highestAbnormalVoltage = voltage;
    }

    MilliVolt vmin = 0;
    for (auto it = analysis.regions.rbegin();
         it != analysis.regions.rend(); ++it) {
        if (it->second != Region::Safe)
            break;
        vmin = it->first;
    }
    if (vmin == 0)
        vmin = analysis.regions.rbegin()->first;
    analysis.vmin = vmin;
    return analysis;
}

sim::FaultPlanConfig
hostilePlan()
{
    sim::FaultPlanConfig plan;
    plan.i2cWriteFailure = 0.10;
    plan.watchdogMiss = 0.05;
    plan.staleRead = 0.05;
    plan.seed = 41;
    return plan;
}

FrameworkConfig
goldenConfig()
{
    FrameworkConfig config;
    config.workloads = {wl::findWorkload("bwaves/ref"),
                        wl::findWorkload("leslie3d/ref"),
                        wl::findWorkload("namd/ref")};
    config.cores = {0, 3, 6};
    config.campaigns = 2;
    config.maxEpochs = 8;
    config.startVoltage = 930;
    config.endVoltage = 865;
    return config;
}

CharacterizationReport
goldenSweep(int workers, const std::string &journal = "",
            const std::string &cache = "")
{
    sim::Platform platform(sim::XGene2Params{}, sim::ChipCorner::TTT,
                           21);
    platform.installFaultPlan(hostilePlan());
    CharacterizationFramework framework(&platform);
    FrameworkConfig config = goldenConfig();
    config.workers = workers;
    config.journalPath = journal;
    config.cachePath = cache;
    return framework.characterize(config);
}

void
expectAnalysesEqual(const RegionAnalysis &ours,
                    const RegionAnalysis &golden,
                    const std::string &label)
{
    EXPECT_EQ(ours.regions, golden.regions) << label;
    EXPECT_EQ(ours.severityByVoltage, golden.severityByVoltage)
        << label;
    EXPECT_EQ(ours.runsByVoltage, golden.runsByVoltage) << label;
    EXPECT_EQ(ours.vmin, golden.vmin) << label;
    EXPECT_EQ(ours.highestCrashVoltage, golden.highestCrashVoltage)
        << label;
    EXPECT_EQ(ours.highestAbnormalVoltage,
              golden.highestAbnormalVoltage)
        << label;
}

TEST(LedgerGolden, ViewMatchesLegacyDerivationPerCell)
{
    const auto report = goldenSweep(4);
    ASSERT_EQ(report.cells.size(), 9u);
    const SeverityWeights weights = goldenConfig().weights;
    for (const auto &cell : report.cells) {
        const RegionAnalysis golden = legacyAnalyzeRegions(
            report.allRuns, cell.workloadId, cell.core, weights);
        expectAnalysesEqual(cell.analysis, golden,
                            cell.workloadId + "/core" +
                                std::to_string(cell.core));
    }
}

TEST(LedgerGolden, WorkerCountsAndReplaysAreByteIdentical)
{
    const std::string journal = "/tmp/vmargin_golden_journal";
    const std::string cache = "/tmp/vmargin_golden_cache";
    std::remove(journal.c_str());
    std::remove(cache.c_str());

    const auto one = goldenSweep(1);
    const std::string bytes = serializeReport(one);
    EXPECT_EQ(serializeReport(goldenSweep(2)), bytes);
    EXPECT_EQ(serializeReport(goldenSweep(8, journal, cache)), bytes);

    // Journal resume: every cell replays, report unchanged.
    const auto resumed = goldenSweep(1, journal);
    EXPECT_EQ(resumed.telemetry.journalReplays, 9u);
    EXPECT_EQ(serializeReport(resumed), bytes);

    // Cache-served rerun: every cell a hit, report unchanged.
    const auto cached = goldenSweep(2, "", cache);
    EXPECT_EQ(cached.telemetry.cacheHits, 9u);
    EXPECT_EQ(serializeReport(cached), bytes);

    std::remove(journal.c_str());
    std::remove(cache.c_str());
}

TEST(LedgerGolden, SerializeRoundTripIsByteStable)
{
    const auto report = goldenSweep(4);
    const std::string bytes = serializeReport(report);
    // The rebuilt report re-derives every analysis through the
    // LedgerView; serializing it again must reproduce the document.
    const auto rebuilt =
        deserializeReport(bytes, goldenConfig().weights);
    EXPECT_EQ(serializeReport(rebuilt), bytes);
    EXPECT_EQ(rebuilt.toCsv(), report.toCsv());
    EXPECT_EQ(rebuilt.summaryCsv(), report.summaryCsv());
    ASSERT_EQ(rebuilt.cells.size(), report.cells.size());
    for (size_t i = 0; i < report.cells.size(); ++i) {
        EXPECT_EQ(rebuilt.cells[i].workloadId,
                  report.cells[i].workloadId)
            << "cell order must survive the round trip";
        expectAnalysesEqual(rebuilt.cells[i].analysis,
                            report.cells[i].analysis,
                            report.cells[i].workloadId);
    }
}

} // namespace
} // namespace vmargin
