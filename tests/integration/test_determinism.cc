/**
 * @file
 * Whole-pipeline determinism: identical configurations on identical
 * chips must reproduce byte-identical results, whatever the previous
 * history of the platform objects.
 */

#include <gtest/gtest.h>

#include "core/framework.hh"
#include "workloads/spec.hh"

namespace vmargin
{
namespace
{

FrameworkConfig
smallConfig()
{
    FrameworkConfig config;
    config.workloads = {wl::findWorkload("leslie3d/ref")};
    config.cores = {0, 4};
    config.campaigns = 3;
    config.maxEpochs = 8;
    config.startVoltage = 930;
    config.endVoltage = 850;
    return config;
}

TEST(Determinism, TwoFreshPlatformsAgree)
{
    sim::Platform a(sim::XGene2Params{}, sim::ChipCorner::TTT, 5);
    sim::Platform b(sim::XGene2Params{}, sim::ChipCorner::TTT, 5);
    CharacterizationFramework fa(&a), fb(&b);
    const auto ra = fa.characterize(smallConfig());
    const auto rb = fb.characterize(smallConfig());
    EXPECT_EQ(ra.toCsv(), rb.toCsv());
    EXPECT_EQ(ra.summaryCsv(), rb.summaryCsv());
}

TEST(Determinism, RepeatOnSamePlatformAgrees)
{
    sim::Platform platform(sim::XGene2Params{}, sim::ChipCorner::TFF,
                           2);
    CharacterizationFramework framework(&platform);
    const auto first = framework.characterize(smallConfig());
    const auto second = framework.characterize(smallConfig());
    EXPECT_EQ(first.toCsv(), second.toCsv());
}

TEST(Determinism, DifferentSerialsDiffer)
{
    sim::Platform a(sim::XGene2Params{}, sim::ChipCorner::TTT, 1);
    sim::Platform b(sim::XGene2Params{}, sim::ChipCorner::TTT, 2);
    CharacterizationFramework fa(&a), fb(&b);
    const auto ra = fa.characterize(smallConfig());
    const auto rb = fb.characterize(smallConfig());
    EXPECT_NE(ra.toCsv(), rb.toCsv());
}

TEST(Determinism, CornersDiffer)
{
    sim::Platform a(sim::XGene2Params{}, sim::ChipCorner::TTT, 1);
    sim::Platform b(sim::XGene2Params{}, sim::ChipCorner::TSS, 1);
    CharacterizationFramework fa(&a), fb(&b);
    const auto config = smallConfig();
    const auto ra = fa.characterize(config);
    const auto rb = fb.characterize(config);
    // TSS is the weak corner: strictly higher Vmin on every cell.
    for (const auto &cell : ra.cells) {
        EXPECT_LT(cell.analysis.vmin,
                  rb.cell(cell.workloadId, cell.core).analysis.vmin);
    }
}

} // namespace
} // namespace vmargin
