/**
 * @file
 * Whole-pipeline determinism: identical configurations on identical
 * chips must reproduce byte-identical results, whatever the previous
 * history of the platform objects.
 */

#include <gtest/gtest.h>

#include <cstdlib>

#include "core/framework.hh"
#include "workloads/spec.hh"

namespace vmargin
{
namespace
{

FrameworkConfig
smallConfig()
{
    FrameworkConfig config;
    config.workloads = {wl::findWorkload("leslie3d/ref")};
    config.cores = {0, 4};
    config.campaigns = 3;
    config.maxEpochs = 8;
    config.startVoltage = 930;
    config.endVoltage = 850;
    return config;
}

TEST(Determinism, TwoFreshPlatformsAgree)
{
    sim::Platform a(sim::XGene2Params{}, sim::ChipCorner::TTT, 5);
    sim::Platform b(sim::XGene2Params{}, sim::ChipCorner::TTT, 5);
    CharacterizationFramework fa(&a), fb(&b);
    const auto ra = fa.characterize(smallConfig());
    const auto rb = fb.characterize(smallConfig());
    EXPECT_EQ(ra.toCsv(), rb.toCsv());
    EXPECT_EQ(ra.summaryCsv(), rb.summaryCsv());
}

TEST(Determinism, RepeatOnSamePlatformAgrees)
{
    sim::Platform platform(sim::XGene2Params{}, sim::ChipCorner::TFF,
                           2);
    CharacterizationFramework framework(&platform);
    const auto first = framework.characterize(smallConfig());
    const auto second = framework.characterize(smallConfig());
    EXPECT_EQ(first.toCsv(), second.toCsv());
}

sim::FaultPlanConfig
hostilePlan()
{
    sim::FaultPlanConfig plan;
    plan.i2cWriteFailure = 0.10;
    plan.watchdogMiss = 0.05;
    plan.managementHang = 0.002;
    plan.staleRead = 0.05;
    plan.seed = 99;
    return plan;
}

TEST(Determinism, FaultyRunsOnFreshPlatformsAgree)
{
    // Injected faults draw from seeded per-op streams scoped to the
    // experiment coordinates, so a hostile sweep must replay
    // bit-identically just like a clean one.
    sim::Platform a(sim::XGene2Params{}, sim::ChipCorner::TTT, 5);
    sim::Platform b(sim::XGene2Params{}, sim::ChipCorner::TTT, 5);
    a.installFaultPlan(hostilePlan());
    b.installFaultPlan(hostilePlan());
    CharacterizationFramework fa(&a), fb(&b);
    const auto ra = fa.characterize(smallConfig());
    const auto rb = fb.characterize(smallConfig());
    EXPECT_EQ(ra.toCsv(), rb.toCsv());
    EXPECT_EQ(ra.summaryCsv(), rb.summaryCsv());
    EXPECT_EQ(ra.telemetry.retries, rb.telemetry.retries);
    EXPECT_EQ(ra.telemetry.lostMeasurements,
              rb.telemetry.lostMeasurements);
    EXPECT_EQ(ra.watchdogInterventions, rb.watchdogInterventions);
}

TEST(Determinism, FaultyRepeatOnSamePlatformAgrees)
{
    // Fault streams are rebased per campaign (scopeTo), so a second
    // sweep on the same plan sees the same faults — history on the
    // platform must not leak into the injected sequence.
    sim::Platform platform(sim::XGene2Params{}, sim::ChipCorner::TFF,
                           2);
    platform.installFaultPlan(hostilePlan());
    CharacterizationFramework framework(&platform);
    const auto first = framework.characterize(smallConfig());
    const auto second = framework.characterize(smallConfig());
    EXPECT_EQ(first.toCsv(), second.toCsv());
    EXPECT_EQ(first.telemetry.retries, second.telemetry.retries);
}

TEST(Determinism, FaultSeedChangesFaultSequenceOnly)
{
    // A different plan seed changes where faults land (telemetry)
    // but the classified physics underneath stays put: Vmin cannot
    // move by more than the odd lost measurement allows.
    sim::Platform a(sim::XGene2Params{}, sim::ChipCorner::TTT, 5);
    sim::Platform b(sim::XGene2Params{}, sim::ChipCorner::TTT, 5);
    auto plan = hostilePlan();
    a.installFaultPlan(plan);
    plan.seed = 100;
    b.installFaultPlan(plan);
    CharacterizationFramework fa(&a), fb(&b);
    const auto ra = fa.characterize(smallConfig());
    const auto rb = fb.characterize(smallConfig());
    for (const auto &cell : ra.cells) {
        const auto &other = rb.cell(cell.workloadId, cell.core);
        EXPECT_LE(
            std::abs(other.analysis.vmin - cell.analysis.vmin), 10);
    }
}

TEST(Determinism, DifferentSerialsDiffer)
{
    sim::Platform a(sim::XGene2Params{}, sim::ChipCorner::TTT, 1);
    sim::Platform b(sim::XGene2Params{}, sim::ChipCorner::TTT, 2);
    CharacterizationFramework fa(&a), fb(&b);
    const auto ra = fa.characterize(smallConfig());
    const auto rb = fb.characterize(smallConfig());
    EXPECT_NE(ra.toCsv(), rb.toCsv());
}

TEST(Determinism, CornersDiffer)
{
    sim::Platform a(sim::XGene2Params{}, sim::ChipCorner::TTT, 1);
    sim::Platform b(sim::XGene2Params{}, sim::ChipCorner::TSS, 1);
    CharacterizationFramework fa(&a), fb(&b);
    const auto config = smallConfig();
    const auto ra = fa.characterize(config);
    const auto rb = fb.characterize(config);
    // TSS is the weak corner: strictly higher Vmin on every cell.
    for (const auto &cell : ra.cells) {
        EXPECT_LT(cell.analysis.vmin,
                  rb.cell(cell.workloadId, cell.core).analysis.vmin);
    }
}

} // namespace
} // namespace vmargin
