/**
 * @file
 * Determinism contract of the parallel campaign executor: the same
 * configuration must produce byte-identical serialized reports at
 * any worker count — with fault injection enabled — and journals
 * that are identical after canonical sort (on-disk journal order is
 * completion order, the one artifact allowed to vary).
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "core/executor.hh"
#include "core/framework.hh"
#include "core/ledger.hh"
#include "core/resultstore.hh"
#include "util/config.hh"
#include "workloads/spec.hh"

namespace vmargin
{
namespace
{

sim::FaultPlanConfig
hostilePlan()
{
    sim::FaultPlanConfig plan;
    plan.i2cWriteFailure = 0.10;
    plan.watchdogMiss = 0.05;
    plan.managementHang = 0.002;
    plan.staleRead = 0.05;
    plan.seed = 99;
    return plan;
}

FrameworkConfig
sweepConfig()
{
    FrameworkConfig config;
    config.workloads = {wl::findWorkload("bwaves/ref"),
                        wl::findWorkload("leslie3d/ref")};
    config.cores = {0, 2, 4, 6};
    config.campaigns = 2;
    config.maxEpochs = 8;
    config.startVoltage = 930;
    config.endVoltage = 870;
    return config;
}

CharacterizationReport
sweep(int workers, const std::string &journal_path = "")
{
    sim::Platform platform(sim::XGene2Params{}, sim::ChipCorner::TTT,
                           7);
    platform.installFaultPlan(hostilePlan());
    CharacterizationFramework framework(&platform);
    FrameworkConfig config = sweepConfig();
    config.workers = workers;
    config.journalPath = journal_path;
    return framework.characterize(config);
}

/** Journal contents re-framed with cells in canonical (workload,
 *  core) order — on-disk order is completion order, the one artifact
 *  allowed to vary between worker counts. */
std::string
canonicalizeJournal(const std::string &path)
{
    sim::Platform platform(sim::XGene2Params{}, sim::ChipCorner::TTT,
                           7);
    platform.installFaultPlan(hostilePlan());
    CampaignJournal journal(path);
    journal.open(journalHeaderFor(sweepConfig(), platform));
    EXPECT_EQ(journal.size(), 8u) << "every cell must be committed";

    auto entries = journal.entries();
    std::sort(entries.begin(), entries.end(),
              [](const RunLedger::Entry &a, const RunLedger::Entry &b) {
                  if (a.cell.workloadId != b.cell.workloadId)
                      return a.cell.workloadId < b.cell.workloadId;
                  return a.cell.core < b.cell.core;
              });

    std::string out;
    for (const auto &entry : entries) {
        for (const auto &run : entry.cell.runs)
            appendFrame(out, encodeRunRecord(run));
        CellCommit commit;
        commit.configHash = entry.configHash;
        commit.workloadId = entry.cell.workloadId;
        commit.core = entry.cell.core;
        commit.runCount =
            static_cast<uint32_t>(entry.cell.runs.size());
        commit.watchdogInterventions =
            entry.cell.watchdogInterventions;
        commit.telemetry = entry.cell.telemetry;
        appendFrame(out, encodeCellCommit(commit));
    }
    return out;
}

TEST(ParallelExecutor, WorkerCountsProduceIdenticalReports)
{
    const auto one = sweep(1);
    const auto two = sweep(2);
    const auto eight = sweep(8);

    EXPECT_GT(one.telemetry.retries, 0u)
        << "the hostile plan must exercise the retry layer";
    ASSERT_EQ(one.cells.size(), 8u);

    const std::string bytes = serializeReport(one);
    EXPECT_EQ(serializeReport(two), bytes)
        << "2 workers must serialize byte-identically to 1";
    EXPECT_EQ(serializeReport(eight), bytes)
        << "8 workers must serialize byte-identically to 1";
    EXPECT_EQ(one.toCsv(), two.toCsv());
    EXPECT_EQ(one.summaryCsv(), eight.summaryCsv());
}

TEST(ParallelExecutor, JournalsIdenticalAfterCanonicalSort)
{
    const std::string path1 = "/tmp/vmargin_par_journal_w1";
    const std::string path8 = "/tmp/vmargin_par_journal_w8";
    std::remove(path1.c_str());
    std::remove(path8.c_str());

    const auto one = sweep(1, path1);
    const auto eight = sweep(8, path8);
    EXPECT_EQ(serializeReport(one), serializeReport(eight));

    EXPECT_EQ(canonicalizeJournal(path1),
              canonicalizeJournal(path8))
        << "journals may differ in completion order only";
    std::remove(path1.c_str());
    std::remove(path8.c_str());
}

TEST(ParallelExecutor, ParallelJournalResumesSequentially)
{
    // A sweep journaled by 8 workers (out-of-order appends) must be
    // replayable by a later single-worker session, and vice versa.
    const std::string path = "/tmp/vmargin_par_journal_resume";
    std::remove(path.c_str());

    const auto fresh = sweep(8, path);
    const auto resumed = sweep(1, path);
    EXPECT_EQ(resumed.telemetry.journalReplays, 8u)
        << "every cell must come from the journal";
    EXPECT_EQ(serializeReport(resumed), serializeReport(fresh));
    std::remove(path.c_str());
}

TEST(ParallelExecutor, CellBudgetSessionsMatchSingleShot)
{
    // Budgeted sessions with a parallel worker pool must still
    // reassemble the single-shot report byte for byte.
    const std::string path = "/tmp/vmargin_par_budget_journal";
    std::remove(path.c_str());

    const auto reference = sweep(4);

    FrameworkConfig config = sweepConfig();
    config.workers = 4;
    config.journalPath = path;
    config.cellBudget = 3;
    CharacterizationReport report;
    int sessions = 0;
    do {
        sim::Platform platform(sim::XGene2Params{},
                               sim::ChipCorner::TTT, 7);
        platform.installFaultPlan(hostilePlan());
        CharacterizationFramework framework(&platform);
        report = framework.characterize(config);
        ++sessions;
        ASSERT_LE(sessions, 4) << "8 cells / 3 per session";
    } while (!report.complete);

    EXPECT_EQ(sessions, 3);
    EXPECT_EQ(serializeReport(report), serializeReport(reference));
    std::remove(path.c_str());
}

TEST(ParallelExecutor, MatchesSingleCellMeasurement)
{
    // The executor's per-replica measurement must agree with the
    // sequential characterizeCell() path on the caller's platform.
    const auto report = sweep(8);
    sim::Platform platform(sim::XGene2Params{}, sim::ChipCorner::TTT,
                           7);
    platform.installFaultPlan(hostilePlan());
    CharacterizationFramework framework(&platform);
    const auto cell = framework.characterizeCell(
        wl::findWorkload("bwaves/ref"), 4, sweepConfig());
    EXPECT_EQ(cell.analysis.vmin,
              report.cell("bwaves/ref", 4).analysis.vmin);
}

TEST(ParallelExecutor, ConfigFileCarriesWorkersAndCache)
{
    const auto file = util::ConfigFile::fromText(
        "workloads = bwaves\n"
        "cores = 0\n"
        "workers = 4\n"
        "cache = /tmp/vmargin_cfg_cache\n");
    const auto config = FrameworkConfig::fromConfig(file);
    EXPECT_EQ(config.workers, 4);
    EXPECT_EQ(config.cachePath, "/tmp/vmargin_cfg_cache");
}

TEST(ParallelExecutorDeath, RejectsNegativeWorkers)
{
    FrameworkConfig config = sweepConfig();
    config.workers = -2;
    EXPECT_EXIT(config.validate(), ::testing::ExitedWithCode(1),
                "workers");
}

} // namespace
} // namespace vmargin
