/**
 * @file
 * Unit tests for Recursive Feature Elimination.
 */

#include <gtest/gtest.h>

#include <algorithm>

#include "stats/rfe.hh"
#include "util/rng.hh"

namespace vmargin::stats
{
namespace
{

/** Dataset where y depends only on columns `signal`. */
struct Synthetic
{
    Matrix x;
    Vector y;
};

Synthetic
makeSynthetic(size_t samples, size_t features,
              const std::vector<size_t> &signal, double noise,
              Seed seed)
{
    util::Rng rng(seed);
    Synthetic data;
    data.x = Matrix(samples, features);
    data.y.assign(samples, 0.0);
    for (size_t i = 0; i < samples; ++i) {
        for (size_t j = 0; j < features; ++j)
            data.x(i, j) = rng.uniform(-1, 1);
        double y = 0.5;
        for (size_t k = 0; k < signal.size(); ++k)
            y += (2.0 + static_cast<double>(k)) *
                 data.x(i, signal[k]);
        data.y[i] = y + rng.gaussian(0.0, noise);
    }
    return data;
}

TEST(Rfe, FindsSignalFeatures)
{
    const std::vector<size_t> signal{3, 11, 17};
    const auto data = makeSynthetic(120, 20, signal, 0.05, 1);
    const auto result =
        recursiveFeatureElimination(data.x, data.y, 3);
    ASSERT_EQ(result.selected.size(), 3u);
    for (size_t s : signal)
        EXPECT_NE(std::find(result.selected.begin(),
                            result.selected.end(), s),
                  result.selected.end())
            << "signal feature " << s << " was eliminated";
}

TEST(Rfe, OrdersByImportance)
{
    // Coefficients 2, 3, 4 on features 0, 1, 2: the strongest
    // feature (2) should rank first.
    const auto data = makeSynthetic(200, 6, {0, 1, 2}, 0.01, 2);
    const auto result =
        recursiveFeatureElimination(data.x, data.y, 3);
    EXPECT_EQ(result.selected.front(), 2u);
}

TEST(Rfe, EliminationOrderHasDroppedFeatures)
{
    const auto data = makeSynthetic(60, 8, {0}, 0.05, 3);
    const auto result =
        recursiveFeatureElimination(data.x, data.y, 2);
    EXPECT_EQ(result.eliminationOrder.size(), 6u);
    // Nothing selected also appears in the elimination order.
    for (size_t s : result.selected)
        EXPECT_EQ(std::count(result.eliminationOrder.begin(),
                             result.eliminationOrder.end(), s),
                  0);
}

TEST(Rfe, KeepAllIsIdentitySelection)
{
    const auto data = makeSynthetic(40, 5, {1}, 0.05, 4);
    const auto result =
        recursiveFeatureElimination(data.x, data.y, 5);
    EXPECT_EQ(result.selected.size(), 5u);
    EXPECT_TRUE(result.eliminationOrder.empty());
}

TEST(Rfe, BatchedDropsReachTarget)
{
    const auto data = makeSynthetic(80, 30, {5, 6}, 0.05, 5);
    const auto result =
        recursiveFeatureElimination(data.x, data.y, 2, 7);
    EXPECT_EQ(result.selected.size(), 2u);
    EXPECT_EQ(result.eliminationOrder.size(), 28u);
}

TEST(Rfe, SurvivesMoreFeaturesThanSamples)
{
    // The paper's regime: 101 features, 40 samples. The ridge inside
    // RFE must keep the normal equations solvable.
    const auto data = makeSynthetic(40, 101, {10, 50}, 0.05, 6);
    const auto result =
        recursiveFeatureElimination(data.x, data.y, 5, 8);
    EXPECT_EQ(result.selected.size(), 5u);
    EXPECT_NE(std::find(result.selected.begin(),
                        result.selected.end(), size_t{10}),
              result.selected.end());
    EXPECT_NE(std::find(result.selected.begin(),
                        result.selected.end(), size_t{50}),
              result.selected.end());
}

TEST(Rfe, ToleratesDuplicatedColumns)
{
    // Perfectly collinear copies of the signal column must not make
    // the elimination blow up.
    auto data = makeSynthetic(60, 6, {0}, 0.02, 7);
    for (size_t i = 0; i < data.x.rows(); ++i)
        data.x(i, 5) = data.x(i, 0);
    const auto result =
        recursiveFeatureElimination(data.x, data.y, 2);
    ASSERT_EQ(result.selected.size(), 2u);
    // One of the two copies must survive.
    const bool has_copy =
        std::count(result.selected.begin(), result.selected.end(),
                   size_t{0}) +
            std::count(result.selected.begin(),
                       result.selected.end(), size_t{5}) >=
        1;
    EXPECT_TRUE(has_copy);
}

TEST(Rfe, DeathOnBadArguments)
{
    const auto data = makeSynthetic(10, 4, {0}, 0.1, 8);
    EXPECT_DEATH(recursiveFeatureElimination(data.x, data.y, 0),
                 "keep");
    EXPECT_DEATH(recursiveFeatureElimination(data.x, data.y, 5),
                 "keep");
    EXPECT_DEATH(recursiveFeatureElimination(data.x, data.y, 2, 0),
                 "drop_per_round");
}

} // namespace
} // namespace vmargin::stats
