/**
 * @file
 * Unit tests for OLS linear regression and the naive baseline.
 */

#include <gtest/gtest.h>

#include "stats/linreg.hh"
#include "stats/metrics.hh"
#include "util/rng.hh"

namespace vmargin::stats
{
namespace
{

TEST(LinearRegression, RecoversExactLinearModel)
{
    // y = 3 + 2 x1 - 0.5 x2
    util::Rng rng(1);
    Matrix x(50, 2);
    Vector y(50);
    for (size_t i = 0; i < 50; ++i) {
        x(i, 0) = rng.uniform(-5, 5);
        x(i, 1) = rng.uniform(-5, 5);
        y[i] = 3.0 + 2.0 * x(i, 0) - 0.5 * x(i, 1);
    }
    LinearRegression lr;
    lr.fit(x, y);
    EXPECT_NEAR(lr.intercept(), 3.0, 1e-9);
    EXPECT_NEAR(lr.coefficients()[0], 2.0, 1e-9);
    EXPECT_NEAR(lr.coefficients()[1], -0.5, 1e-9);
    EXPECT_NEAR(lr.score(x, y), 1.0, 1e-12);
}

TEST(LinearRegression, PredictMatchesManualEvaluation)
{
    Matrix x = Matrix::fromRows({{0.0}, {1.0}, {2.0}, {3.0}});
    Vector y{1.0, 3.0, 5.0, 7.0}; // y = 1 + 2x
    LinearRegression lr;
    lr.fit(x, y);
    EXPECT_NEAR(lr.predictOne({10.0}), 21.0, 1e-9);
    const Vector all = lr.predict(x);
    EXPECT_NEAR(all[2], 5.0, 1e-9);
}

TEST(LinearRegression, RobustToNoise)
{
    util::Rng rng(2);
    Matrix x(200, 1);
    Vector y(200);
    for (size_t i = 0; i < 200; ++i) {
        x(i, 0) = rng.uniform(0, 10);
        y[i] = 4.0 * x(i, 0) + rng.gaussian(0.0, 0.5);
    }
    LinearRegression lr;
    lr.fit(x, y);
    EXPECT_NEAR(lr.coefficients()[0], 4.0, 0.05);
    EXPECT_GT(lr.score(x, y), 0.98);
}

TEST(LinearRegression, ConstantTarget)
{
    Matrix x = Matrix::fromRows({{1.0}, {2.0}, {3.0}});
    Vector y{5.0, 5.0, 5.0};
    LinearRegression lr;
    lr.fit(x, y);
    EXPECT_NEAR(lr.intercept(), 5.0, 1e-9);
    EXPECT_NEAR(lr.coefficients()[0], 0.0, 1e-9);
}

TEST(LinearRegression, TrainedFlag)
{
    LinearRegression lr;
    EXPECT_FALSE(lr.trained());
    Matrix x = Matrix::fromRows({{1.0}, {2.0}});
    lr.fit(x, {1.0, 2.0});
    EXPECT_TRUE(lr.trained());
}

TEST(LinearRegression, DeathOnPredictBeforeFit)
{
    LinearRegression lr;
    EXPECT_DEATH(lr.predictOne({1.0}), "predict before fit");
}

TEST(LinearRegression, DeathOnSampleSizeMismatch)
{
    Matrix x = Matrix::fromRows({{1.0}, {2.0}});
    LinearRegression lr;
    lr.fit(x, {1.0, 2.0});
    EXPECT_DEATH(lr.predictOne({1.0, 2.0}), "features");
}

TEST(MeanPredictor, PredictsTrainingMean)
{
    MeanPredictor naive;
    naive.fit({2.0, 4.0, 6.0});
    EXPECT_DOUBLE_EQ(naive.predictOne(), 4.0);
    const Vector out = naive.predict(3);
    EXPECT_EQ(out, (Vector{4.0, 4.0, 4.0}));
}

TEST(MeanPredictor, R2IsZeroOnTrainingSet)
{
    // The mean predictor is the R2 = 0 reference by definition.
    const Vector y{1.0, 2.0, 3.0, 4.0};
    MeanPredictor naive;
    naive.fit(y);
    EXPECT_NEAR(r2Score(y, naive.predict(y.size())), 0.0, 1e-12);
}

} // namespace
} // namespace vmargin::stats
