/**
 * @file
 * Unit tests for R2 / RMSE / MAE / correlation metrics.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "stats/metrics.hh"

namespace vmargin::stats
{
namespace
{

TEST(Mean, Basic)
{
    EXPECT_DOUBLE_EQ(mean({1, 2, 3}), 2.0);
    EXPECT_DOUBLE_EQ(mean({}), 0.0);
}

TEST(Variance, Basic)
{
    EXPECT_DOUBLE_EQ(variance({2, 4, 4, 4, 5, 5, 7, 9}), 4.0);
    EXPECT_DOUBLE_EQ(stddev({2, 4, 4, 4, 5, 5, 7, 9}), 2.0);
    EXPECT_DOUBLE_EQ(variance({5}), 0.0);
}

TEST(R2, PerfectFit)
{
    EXPECT_DOUBLE_EQ(r2Score({1, 2, 3}, {1, 2, 3}), 1.0);
}

TEST(R2, MeanPredictionIsZero)
{
    EXPECT_NEAR(r2Score({1, 2, 3}, {2, 2, 2}), 0.0, 1e-12);
}

TEST(R2, WorseThanMeanIsNegative)
{
    EXPECT_LT(r2Score({1, 2, 3}, {3, 2, 1}), 0.0);
}

TEST(R2, ConstantTruth)
{
    EXPECT_DOUBLE_EQ(r2Score({5, 5, 5}, {5, 5, 5}), 1.0);
    EXPECT_DOUBLE_EQ(r2Score({5, 5, 5}, {4, 5, 6}), 0.0);
}

TEST(Rmse, KnownValue)
{
    // Residuals 3 and 4 -> RMSE = sqrt(25/2).
    EXPECT_DOUBLE_EQ(rmse({0, 0}, {3, 4}), std::sqrt(12.5));
    EXPECT_DOUBLE_EQ(rmse({1, 2}, {1, 2}), 0.0);
}

TEST(Mae, KnownValue)
{
    EXPECT_DOUBLE_EQ(meanAbsoluteError({0, 0}, {3, -4}), 3.5);
}

TEST(Pearson, PerfectCorrelation)
{
    EXPECT_NEAR(pearson({1, 2, 3}, {2, 4, 6}), 1.0, 1e-12);
    EXPECT_NEAR(pearson({1, 2, 3}, {6, 4, 2}), -1.0, 1e-12);
}

TEST(Pearson, ConstantSideIsZero)
{
    EXPECT_DOUBLE_EQ(pearson({1, 1, 1}, {1, 2, 3}), 0.0);
}

TEST(Metrics, DeathOnSizeMismatch)
{
    EXPECT_DEATH(r2Score({1, 2}, {1}), "size mismatch");
    EXPECT_DEATH(rmse({1}, {1, 2}), "size mismatch");
}

} // namespace
} // namespace vmargin::stats
