/**
 * @file
 * Unit tests for train/test and k-fold splitting.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "stats/split.hh"

namespace vmargin::stats
{
namespace
{

Matrix
indexMatrix(size_t n)
{
    Matrix x(n, 1);
    for (size_t i = 0; i < n; ++i)
        x(i, 0) = static_cast<double>(i);
    return x;
}

Vector
indexVector(size_t n)
{
    Vector y(n);
    for (size_t i = 0; i < n; ++i)
        y[i] = static_cast<double>(i);
    return y;
}

TEST(TrainTestSplit, SizesMatchFraction)
{
    const auto split =
        trainTestSplit(indexMatrix(100), indexVector(100), 0.2, 1);
    EXPECT_EQ(split.testY.size(), 20u);
    EXPECT_EQ(split.trainY.size(), 80u);
    EXPECT_EQ(split.trainX.rows(), 80u);
    EXPECT_EQ(split.testX.rows(), 20u);
}

TEST(TrainTestSplit, PartitionIsExactAndDisjoint)
{
    const auto split =
        trainTestSplit(indexMatrix(50), indexVector(50), 0.3, 2);
    std::set<size_t> all(split.trainIndices.begin(),
                         split.trainIndices.end());
    for (size_t i : split.testIndices) {
        EXPECT_TRUE(all.insert(i).second) << "index " << i
                                          << " duplicated";
    }
    EXPECT_EQ(all.size(), 50u);
}

TEST(TrainTestSplit, RowsFollowIndices)
{
    const auto split =
        trainTestSplit(indexMatrix(20), indexVector(20), 0.25, 3);
    for (size_t i = 0; i < split.testIndices.size(); ++i) {
        EXPECT_DOUBLE_EQ(split.testX(i, 0),
                         static_cast<double>(split.testIndices[i]));
        EXPECT_DOUBLE_EQ(split.testY[i],
                         static_cast<double>(split.testIndices[i]));
    }
}

TEST(TrainTestSplit, DeterministicInSeed)
{
    const auto a =
        trainTestSplit(indexMatrix(30), indexVector(30), 0.2, 42);
    const auto b =
        trainTestSplit(indexMatrix(30), indexVector(30), 0.2, 42);
    EXPECT_EQ(a.testIndices, b.testIndices);
    const auto c =
        trainTestSplit(indexMatrix(30), indexVector(30), 0.2, 43);
    EXPECT_NE(a.testIndices, c.testIndices);
}

TEST(TrainTestSplit, AtLeastOneEachSide)
{
    const auto split =
        trainTestSplit(indexMatrix(3), indexVector(3), 0.01, 1);
    EXPECT_GE(split.testY.size(), 1u);
    EXPECT_GE(split.trainY.size(), 1u);
}

TEST(TrainTestSplit, DeathOnBadFraction)
{
    EXPECT_DEATH(
        trainTestSplit(indexMatrix(10), indexVector(10), 1.5, 1),
        "fraction");
}

TEST(KFold, CoversDatasetDisjointly)
{
    const auto folds =
        kFoldSplit(indexMatrix(23), indexVector(23), 5, 7);
    ASSERT_EQ(folds.size(), 5u);
    std::set<size_t> seen;
    for (const auto &fold : folds)
        for (size_t i : fold.testIndices)
            EXPECT_TRUE(seen.insert(i).second);
    EXPECT_EQ(seen.size(), 23u);
}

TEST(KFold, TrainTestComplementary)
{
    const auto folds =
        kFoldSplit(indexMatrix(12), indexVector(12), 3, 9);
    for (const auto &fold : folds) {
        EXPECT_EQ(fold.trainIndices.size() + fold.testIndices.size(),
                  12u);
        for (size_t i : fold.testIndices)
            EXPECT_EQ(std::count(fold.trainIndices.begin(),
                                 fold.trainIndices.end(), i),
                      0);
    }
}

TEST(KFold, DeathOnTooManyFolds)
{
    EXPECT_DEATH(kFoldSplit(indexMatrix(3), indexVector(3), 4, 1),
                 "folds");
}

} // namespace
} // namespace vmargin::stats
