/**
 * @file
 * Unit tests for feature standardization.
 */

#include <gtest/gtest.h>

#include "stats/metrics.hh"
#include "stats/scaler.hh"

namespace vmargin::stats
{
namespace
{

TEST(Scaler, ZeroMeanUnitVariance)
{
    const Matrix x = Matrix::fromRows(
        {{1, 100}, {2, 200}, {3, 300}, {4, 400}});
    StandardScaler scaler;
    const Matrix xs = scaler.fitTransform(x);
    for (size_t c = 0; c < xs.cols(); ++c) {
        EXPECT_NEAR(mean(xs.col(c)), 0.0, 1e-12);
        EXPECT_NEAR(variance(xs.col(c)), 1.0, 1e-12);
    }
}

TEST(Scaler, ConstantColumnMapsToZero)
{
    const Matrix x = Matrix::fromRows({{7, 1}, {7, 2}, {7, 3}});
    StandardScaler scaler;
    const Matrix xs = scaler.fitTransform(x);
    for (size_t r = 0; r < xs.rows(); ++r)
        EXPECT_DOUBLE_EQ(xs(r, 0), 0.0);
}

TEST(Scaler, TransformUsesTrainingStatistics)
{
    const Matrix train = Matrix::fromRows({{0.0}, {10.0}});
    StandardScaler scaler;
    scaler.fit(train);
    // mean 5, stddev 5 -> 20 maps to 3.
    const Matrix out = scaler.transform(Matrix::fromRows({{20.0}}));
    EXPECT_NEAR(out(0, 0), 3.0, 1e-12);
}

TEST(Scaler, TransformOne)
{
    const Matrix train = Matrix::fromRows({{0.0, 1.0}, {10.0, 3.0}});
    StandardScaler scaler;
    scaler.fit(train);
    const Vector out = scaler.transformOne({5.0, 2.0});
    EXPECT_NEAR(out[0], 0.0, 1e-12);
    EXPECT_NEAR(out[1], 0.0, 1e-12);
}

TEST(Scaler, ExposesMoments)
{
    const Matrix train = Matrix::fromRows({{0.0}, {10.0}});
    StandardScaler scaler;
    scaler.fit(train);
    EXPECT_DOUBLE_EQ(scaler.means()[0], 5.0);
    EXPECT_DOUBLE_EQ(scaler.stddevs()[0], 5.0);
    EXPECT_TRUE(scaler.trained());
}

TEST(Scaler, DeathBeforeFit)
{
    StandardScaler scaler;
    EXPECT_DEATH(scaler.transform(Matrix(1, 1)),
                 "transform before fit");
}

TEST(Scaler, DeathOnColumnMismatch)
{
    StandardScaler scaler;
    scaler.fit(Matrix(2, 2));
    EXPECT_DEATH(scaler.transform(Matrix(2, 3)), "columns");
}

} // namespace
} // namespace vmargin::stats
