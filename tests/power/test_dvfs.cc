/**
 * @file
 * Unit tests for DVFS sweep helpers.
 */

#include <gtest/gtest.h>

#include "power/dvfs.hh"

namespace vmargin::power
{
namespace
{

TEST(VoltageSweep, DescendingInclusive)
{
    const auto sweep = voltageSweep(980, 965, 5);
    EXPECT_EQ(sweep,
              (std::vector<MilliVolt>{980, 975, 970, 965}));
}

TEST(VoltageSweep, SinglePoint)
{
    const auto sweep = voltageSweep(900, 900, 5);
    EXPECT_EQ(sweep.size(), 1u);
    EXPECT_EQ(sweep[0], 900);
}

TEST(VoltageSweep, UnreachableFloorStopsAbove)
{
    const auto sweep = voltageSweep(980, 972, 5);
    EXPECT_EQ(sweep.back(), 975);
}

TEST(VoltageSweep, DeathOnBadArgs)
{
    EXPECT_DEATH(voltageSweep(980, 990, 5), "below");
    EXPECT_DEATH(voltageSweep(980, 900, 0), "positive");
}

TEST(FrequencyLadder, FullGrid)
{
    const auto ladder = frequencyLadder(sim::XGene2Params{});
    EXPECT_EQ(ladder.size(), 8u);
    EXPECT_EQ(ladder.front(), 2400);
    EXPECT_EQ(ladder.back(), 300);
}

TEST(OperatingGrid, SizeAndBounds)
{
    const auto grid = operatingGrid(sim::XGene2Params{}, 960);
    // 5 voltages x 8 frequencies.
    EXPECT_EQ(grid.size(), 40u);
    for (const auto &point : grid) {
        EXPECT_GE(point.voltage, 960);
        EXPECT_LE(point.voltage, 980);
        EXPECT_GE(point.frequency, 300);
        EXPECT_LE(point.frequency, 2400);
    }
}

} // namespace
} // namespace vmargin::power
