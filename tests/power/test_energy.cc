/**
 * @file
 * Unit tests for energy accounting over characterization runs.
 */

#include <gtest/gtest.h>

#include "power/energy.hh"
#include "sim/cache_hierarchy.hh"
#include "workloads/spec.hh"

namespace vmargin::power
{
namespace
{

class EnergyTest : public ::testing::Test
{
  protected:
    EnergyTest()
        : variation_(params_, sim::ChipCorner::TTT, 1),
          caches_(params_), core_(4, params_, &caches_),
          accountant_(PowerModel{}, variation_, 950)
    {
    }

    sim::RunResult
    cleanRun(MilliVolt v, MegaHertz f)
    {
        sim::OnsetSet onsets;
        onsets.sdc = 600;
        onsets.ce = 595;
        onsets.ue = 590;
        onsets.ac = 590;
        onsets.sc = 580;
        sim::ExecutionConfig config;
        config.voltage = v;
        config.frequency = f;
        config.seed = 1;
        config.maxEpochs = 10;
        return core_.run(wl::findWorkload("leslie3d/ref"), onsets,
                         config);
    }

    sim::XGene2Params params_;
    sim::ProcessVariation variation_;
    sim::CacheHierarchy caches_;
    sim::Core core_;
    EnergyAccountant accountant_;
};

TEST_F(EnergyTest, PositiveComponents)
{
    const auto run = cleanRun(980, 2400);
    const EnergyBreakdown energy =
        accountant_.runEnergy(4, run, 43.0);
    EXPECT_GT(energy.coreDynamic, 0.0);
    EXPECT_GT(energy.coreLeakage, 0.0);
    EXPECT_GT(energy.soc, 0.0);
    EXPECT_NEAR(energy.total(), energy.coreDynamic +
                                    energy.coreLeakage + energy.soc,
                1e-12);
}

TEST_F(EnergyTest, UndervoltingSavesEnergy)
{
    const auto run = cleanRun(980, 2400);
    const double nominal =
        accountant_.runEnergy(4, run, 43.0).coreDynamic;
    const double scaled =
        accountant_.scaledEnergy(4, run, 880, 2400, 43.0)
            .coreDynamic;
    // (880/980)^2 -> 19.4% dynamic-energy savings.
    EXPECT_NEAR(1.0 - scaled / nominal, 0.194, 0.002);
}

TEST_F(EnergyTest, HalvingFrequencyKeepsDynamicEnergy)
{
    // Same cycles at half frequency: dynamic power halves but the
    // run takes twice as long — dynamic energy unchanged, while
    // leakage and SoC energy double with the runtime.
    const auto run = cleanRun(980, 2400);
    const EnergyBreakdown full =
        accountant_.scaledEnergy(4, run, 980, 2400, 43.0);
    const EnergyBreakdown half =
        accountant_.scaledEnergy(4, run, 980, 1200, 43.0);
    EXPECT_NEAR(half.coreDynamic, full.coreDynamic, 1e-9);
    EXPECT_NEAR(half.coreLeakage, 2.0 * full.coreLeakage, 1e-9);
    EXPECT_NEAR(half.soc, 2.0 * full.soc, 1e-9);
}

TEST_F(EnergyTest, ScaledAtSamePointEqualsRunEnergy)
{
    const auto run = cleanRun(905, 2400);
    const EnergyBreakdown direct =
        accountant_.runEnergy(4, run, 43.0);
    const EnergyBreakdown scaled =
        accountant_.scaledEnergy(4, run, 905, 2400, 43.0);
    EXPECT_DOUBLE_EQ(direct.total(), scaled.total());
}

TEST_F(EnergyTest, LeakyCoreCostsMore)
{
    // Compare against a TFF (leaky) chip's accounting of the same
    // run.
    const sim::ProcessVariation tff(params_, sim::ChipCorner::TFF,
                                    1);
    const EnergyAccountant leaky(PowerModel{}, tff, 950);
    const auto run = cleanRun(980, 2400);
    EXPECT_GT(leaky.runEnergy(4, run, 43.0).coreLeakage,
              accountant_.runEnergy(4, run, 43.0).coreLeakage);
}

} // namespace
} // namespace vmargin::power
