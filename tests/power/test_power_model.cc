/**
 * @file
 * Unit tests for the package power model and the paper's relative
 * power arithmetic.
 */

#include <gtest/gtest.h>

#include "power/power_model.hh"

namespace vmargin::power
{
namespace
{

CoreOperatingPoint
nominalPoint()
{
    CoreOperatingPoint op;
    op.voltage = 980;
    op.frequency = 2400;
    op.activity = 0.6;
    op.leakageFactor = 1.0;
    op.temperature = 43.0;
    return op;
}

TEST(PowerModel, QuadraticInVoltage)
{
    const PowerModel model;
    CoreOperatingPoint lo = nominalPoint();
    lo.voltage = 490; // exactly half
    const double ratio = model.coreDynamic(lo) /
                         model.coreDynamic(nominalPoint());
    EXPECT_NEAR(ratio, 0.25, 1e-12);
}

TEST(PowerModel, LinearInFrequencyAndActivity)
{
    const PowerModel model;
    CoreOperatingPoint half_f = nominalPoint();
    half_f.frequency = 1200;
    EXPECT_NEAR(model.coreDynamic(half_f) /
                    model.coreDynamic(nominalPoint()),
                0.5, 1e-12);
    CoreOperatingPoint half_a = nominalPoint();
    half_a.activity = 0.3;
    EXPECT_NEAR(model.coreDynamic(half_a) /
                    model.coreDynamic(nominalPoint()),
                0.5, 1e-12);
}

TEST(PowerModel, LeakageScalesWithFactorAndTemperature)
{
    const PowerModel model;
    CoreOperatingPoint tff = nominalPoint();
    tff.leakageFactor = 1.6;
    EXPECT_NEAR(model.coreLeakage(tff) /
                    model.coreLeakage(nominalPoint()),
                1.6, 1e-12);

    CoreOperatingPoint hot = nominalPoint();
    hot.temperature = 68.0; // one doubling above 43 C
    EXPECT_NEAR(model.coreLeakage(hot) /
                    model.coreLeakage(nominalPoint()),
                2.0, 1e-9);
}

TEST(PowerModel, PackageWithinTdp)
{
    // Fully loaded nominal chip: inside the 35 W TDP but not
    // implausibly low.
    const PowerModel model;
    std::vector<CoreOperatingPoint> cores(8, nominalPoint());
    for (auto &op : cores)
        op.activity = 0.75;
    const Watt package = model.packagePower(cores, 950, 43.0, 1.0);
    EXPECT_LT(package, 35.0);
    EXPECT_GT(package, 20.0);
}

TEST(PowerModel, SocPowerPresentWhenCoresIdle)
{
    const PowerModel model;
    const Watt package = model.packagePower({}, 950, 43.0, 1.0);
    EXPECT_GT(package, 3.0);
    EXPECT_LT(package, 8.0);
}

TEST(PowerModel, UndervoltingSavesPower)
{
    const PowerModel model;
    CoreOperatingPoint scaled = nominalPoint();
    scaled.voltage = 885;
    EXPECT_LT(model.corePower(scaled),
              model.corePower(nominalPoint()));
}

TEST(RelativePower, PaperHeadlineNumbers)
{
    // The paper's savings arithmetic: (915/980)^2 -> 12.8%,
    // (880/980)^2 -> 19.4%, (885/980)^2 at 75% freq -> 38.8%,
    // (760/980)^2 at 50% freq -> 69.9%.
    EXPECT_NEAR(savingsPercent(relativeDynamicPower(915, 980, 1.0)),
                12.8, 0.2);
    EXPECT_NEAR(savingsPercent(relativeDynamicPower(880, 980, 1.0)),
                19.4, 0.2);
    EXPECT_NEAR(savingsPercent(relativeDynamicPower(885, 980, 0.75)),
                38.8, 0.3);
    EXPECT_NEAR(savingsPercent(relativeDynamicPower(760, 980, 0.5)),
                69.9, 0.3);
}

TEST(RelativePower, NominalIsUnity)
{
    EXPECT_DOUBLE_EQ(relativeDynamicPower(980, 980, 1.0), 1.0);
    EXPECT_DOUBLE_EQ(savingsPercent(1.0), 0.0);
}

} // namespace
} // namespace vmargin::power
