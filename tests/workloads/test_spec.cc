/**
 * @file
 * Unit tests for the SPEC CPU2006-like suite composition (the
 * population the paper's prediction study uses: 26 benchmarks, 40
 * samples).
 */

#include <gtest/gtest.h>

#include <set>

#include "workloads/spec.hh"

namespace vmargin::wl
{
namespace
{

TEST(Spec, HeadlineSuiteIsThePaperList)
{
    const auto suite = headlineSuite();
    ASSERT_EQ(suite.size(), 10u);
    const std::set<std::string> expected = {
        "bwaves", "cactusADM", "dealII", "gromacs", "leslie3d",
        "mcf",    "milc",      "namd",   "soplex",  "zeusmp"};
    std::set<std::string> names;
    for (const auto &p : suite)
        names.insert(p.name);
    EXPECT_EQ(names, expected);
}

TEST(Spec, FullSuiteHas40SamplesFrom26Benchmarks)
{
    const auto suite = fullSuite();
    EXPECT_EQ(suite.size(), 40u);
    std::set<std::string> names;
    for (const auto &p : suite)
        names.insert(p.name);
    EXPECT_EQ(names.size(), 26u);
}

TEST(Spec, AllProfilesValidate)
{
    for (const auto &p : fullSuite())
        p.validate(); // panics on failure
}

TEST(Spec, SampleIdsAreUnique)
{
    std::set<std::string> ids;
    for (const auto &p : fullSuite())
        EXPECT_TRUE(ids.insert(p.id()).second)
            << "duplicate sample " << p.id();
}

TEST(Spec, HeadlineIsSubsetOfFull)
{
    const auto full = fullSuite();
    for (const auto &h : headlineSuite()) {
        bool found = false;
        for (const auto &p : full)
            found = found || p.id() == h.id();
        EXPECT_TRUE(found) << h.id();
    }
}

TEST(Spec, FindWorkloadByNameAndId)
{
    EXPECT_EQ(findWorkload("bwaves").name, "bwaves");
    EXPECT_EQ(findWorkload("gcc/166").dataset, "166");
    EXPECT_EQ(findWorkload("gcc").name, "gcc");
}

TEST(Spec, FindWorkloadUnknownIsFatal)
{
    EXPECT_EXIT(findWorkload("doom"),
                ::testing::ExitedWithCode(1), "unknown workload");
}

TEST(Spec, BenchmarkNamesMatchSuite)
{
    const auto names = benchmarkNames();
    EXPECT_EQ(names.size(), 26u);
}

TEST(Spec, DiverseStallBehaviour)
{
    // The margin model relies on the suite spanning memory-bound
    // (high stall) through compute-bound (low stall) behaviour.
    double lo = 1.0, hi = 0.0;
    for (const auto &p : fullSuite()) {
        lo = std::min(lo, p.dispatchStallFrac);
        hi = std::max(hi, p.dispatchStallFrac);
    }
    EXPECT_LT(lo, 0.15);
    EXPECT_GT(hi, 0.6);
}

TEST(Spec, McfIsTheMemoryBoundExtreme)
{
    const auto mcf = findWorkload("mcf/ref");
    EXPECT_GT(mcf.dispatchStallFrac, 0.6);
    EXPECT_LT(mcf.ipcNominal, 0.6);
}

TEST(Spec, DatasetVariantsDifferFromBase)
{
    const auto base = findWorkload("mcf/ref");
    const auto variant = findWorkload("mcf/train");
    EXPECT_NE(base.workingSetKb, variant.workingSetKb);
    EXPECT_NE(base.dispatchStallFrac, variant.dispatchStallFrac);
}

} // namespace
} // namespace vmargin::wl
