/**
 * @file
 * Unit tests for the synthetic activity generator and the address
 * stream.
 */

#include <gtest/gtest.h>

#include <set>

#include "workloads/generator.hh"
#include "workloads/spec.hh"

namespace vmargin::wl
{
namespace
{

TEST(ActivityGenerator, Deterministic)
{
    const auto profile = findWorkload("bwaves");
    ActivityGenerator a(profile, 42), b(profile, 42);
    for (uint32_t e = 0; e < 5; ++e) {
        const auto x = a.epoch(e);
        const auto y = b.epoch(e);
        EXPECT_EQ(x.instructions, y.instructions);
        EXPECT_EQ(x.cycles, y.cycles);
        EXPECT_EQ(x.loads, y.loads);
        EXPECT_EQ(x.branchMispredicts, y.branchMispredicts);
    }
}

TEST(ActivityGenerator, OrderIndependent)
{
    // The campaign replays runs; epoch k must not depend on whether
    // epochs 0..k-1 were generated.
    const auto profile = findWorkload("mcf");
    ActivityGenerator a(profile, 7), b(profile, 7);
    (void)a.epoch(0);
    (void)a.epoch(1);
    const auto direct = b.epoch(2);
    const auto sequential = a.epoch(2);
    EXPECT_EQ(direct.instructions, sequential.instructions);
    EXPECT_EQ(direct.cycles, sequential.cycles);
}

TEST(ActivityGenerator, SeedChangesActivity)
{
    const auto profile = findWorkload("bwaves");
    ActivityGenerator a(profile, 1), b(profile, 2);
    EXPECT_NE(a.epoch(0).cycles, b.epoch(0).cycles);
}

TEST(ActivityGenerator, CountsTrackProfileRates)
{
    const auto profile = findWorkload("namd");
    ActivityGenerator gen(profile, 3);
    double fpu_frac = 0.0, stall_frac = 0.0, ipc = 0.0;
    const int n = 20;
    for (int e = 0; e < n; ++e) {
        const auto act = gen.epoch(static_cast<uint32_t>(e));
        fpu_frac += static_cast<double>(act.fpuOps) /
                    static_cast<double>(act.instructions);
        stall_frac += static_cast<double>(act.dispatchStallCycles) /
                      static_cast<double>(act.cycles);
        ipc += act.ipc();
    }
    EXPECT_NEAR(fpu_frac / n, profile.mix.fpu, 0.02);
    EXPECT_NEAR(stall_frac / n, profile.dispatchStallFrac, 0.02);
    EXPECT_NEAR(ipc / n, profile.ipcNominal, 0.1);
}

TEST(ActivityGenerator, StallsNeverExceedCycles)
{
    for (const auto &profile :
         {findWorkload("mcf"), findWorkload("omnetpp")}) {
        ActivityGenerator gen(profile, 5);
        for (uint32_t e = 0; e < 10; ++e) {
            const auto act = gen.epoch(e);
            EXPECT_LE(act.dispatchStallCycles, act.cycles);
        }
    }
}

TEST(ActivityGenerator, DerivedEventsBounded)
{
    const auto profile = findWorkload("gobmk/nngs");
    ActivityGenerator gen(profile, 9);
    for (uint32_t e = 0; e < 10; ++e) {
        const auto act = gen.epoch(e);
        EXPECT_LE(act.branchMispredicts, act.branches);
        EXPECT_LE(act.btbMisses, act.branches);
        EXPECT_LT(act.exceptions, act.instructions / 100);
    }
}

TEST(AddressStream, StaysInWorkingSet)
{
    AddressStream stream(64 * 1024, 0.5, 0.5, 1);
    for (int i = 0; i < 10000; ++i)
        EXPECT_LT(stream.next(), 64u * 1024u);
}

TEST(AddressStream, SequentialWhenFullySpatial)
{
    AddressStream stream(1 << 20, 1.0, 0.0, 2);
    uint64_t prev = stream.next();
    for (int i = 0; i < 100; ++i) {
        const uint64_t cur = stream.next();
        EXPECT_EQ(cur, (prev + 8) % (1 << 20));
        prev = cur;
    }
}

TEST(AddressStream, RandomWhenNonSpatialCoversSet)
{
    AddressStream stream(1 << 16, 0.0, 0.0, 3);
    std::set<uint64_t> lines;
    for (int i = 0; i < 5000; ++i)
        lines.insert(stream.next() / 64);
    // Random jumps over 1024 lines: most lines get touched.
    EXPECT_GT(lines.size(), 600u);
}

TEST(AddressStream, TemporalLocalityConcentratesInHotSet)
{
    AddressStream stream(1 << 20, 0.0, 0.95, 4);
    int hot = 0;
    const int n = 10000;
    for (int i = 0; i < n; ++i)
        hot += stream.next() < (1 << 20) / 10 ? 1 : 0;
    EXPECT_GT(hot, n * 8 / 10);
}

TEST(AddressStream, TinyWorkingSetClamped)
{
    // Below the 4 KiB floor the stream must still behave.
    AddressStream stream(16, 0.5, 0.5, 5);
    for (int i = 0; i < 100; ++i)
        EXPECT_LT(stream.next(), 4096u);
}

} // namespace
} // namespace vmargin::wl
