/**
 * @file
 * Unit tests for the section 3.4 component self-tests.
 */

#include <gtest/gtest.h>

#include "workloads/selftest.hh"

namespace vmargin::wl
{
namespace
{

TEST(SelfTest, SuiteHasSixTests)
{
    const auto suite = selfTestSuite();
    ASSERT_EQ(suite.size(), 6u);
    for (const auto &p : suite)
        p.validate();
}

TEST(SelfTest, CacheTestsTargetTheirLevel)
{
    EXPECT_EQ(cacheSelfTest(CacheLevel::L1D).targetLevel,
              CacheLevel::L1D);
    EXPECT_EQ(cacheSelfTest(CacheLevel::L3).targetLevel,
              CacheLevel::L3);
}

TEST(SelfTest, CacheTestWorkingSetMatchesArraySize)
{
    EXPECT_DOUBLE_EQ(cacheSelfTest(CacheLevel::L1D).workingSetKb,
                     32.0);
    EXPECT_DOUBLE_EQ(cacheSelfTest(CacheLevel::L2).workingSetKb,
                     256.0);
    EXPECT_DOUBLE_EQ(cacheSelfTest(CacheLevel::L3).workingSetKb,
                     8192.0);
}

TEST(SelfTest, CacheTestsStreamLinearly)
{
    // Fill/flip tests walk the array sequentially by design.
    const auto p = cacheSelfTest(CacheLevel::L2);
    EXPECT_DOUBLE_EQ(p.spatialLocality, 1.0);
    EXPECT_DOUBLE_EQ(p.temporalLocality, 0.0);
    EXPECT_GT(p.memAccessFrac(), 0.7);
}

TEST(SelfTest, AluTestSaturatesIntegerPipe)
{
    const auto p = aluSelfTest();
    EXPECT_EQ(p.kind, WorkloadKind::AluTest);
    EXPECT_GT(p.mix.alu, 0.8);
    EXPECT_LT(p.dispatchStallFrac, 0.1);
    EXPECT_GT(p.ipcNominal, 2.5);
}

TEST(SelfTest, FpuTestSaturatesFloatPipe)
{
    const auto p = fpuSelfTest();
    EXPECT_EQ(p.kind, WorkloadKind::FpuTest);
    EXPECT_GT(p.mix.fpu, 0.8);
    EXPECT_LT(p.dispatchStallFrac, 0.1);
}

TEST(SelfTest, DeathOnCacheTestWithoutLevel)
{
    EXPECT_DEATH(cacheSelfTest(CacheLevel::None), "concrete");
}

} // namespace
} // namespace vmargin::wl
