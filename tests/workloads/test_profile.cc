/**
 * @file
 * Unit tests for workload profile validation and identity.
 */

#include <gtest/gtest.h>

#include "workloads/profile.hh"
#include "workloads/spec.hh"

namespace vmargin::wl
{
namespace
{

WorkloadProfile
validProfile()
{
    WorkloadProfile p;
    p.name = "toy";
    p.mix = {0.4, 0.1, 0.25, 0.1, 0.15};
    return p;
}

TEST(Profile, IdWithAndWithoutDataset)
{
    WorkloadProfile p = validProfile();
    EXPECT_EQ(p.id(), "toy");
    p.dataset = "ref";
    EXPECT_EQ(p.id(), "toy/ref");
}

TEST(Profile, MemAccessFraction)
{
    const WorkloadProfile p = validProfile();
    EXPECT_DOUBLE_EQ(p.memAccessFrac(), 0.35);
}

TEST(Profile, MixTotal)
{
    const WorkloadProfile p = validProfile();
    EXPECT_NEAR(p.mix.total(), 1.0, 1e-12);
}

TEST(Profile, ValidProfilePasses)
{
    validProfile().validate();
}

TEST(Profile, DeathOnEmptyName)
{
    WorkloadProfile p = validProfile();
    p.name.clear();
    EXPECT_DEATH(p.validate(), "empty name");
}

TEST(Profile, DeathOnBadMix)
{
    WorkloadProfile p = validProfile();
    p.mix.alu = 0.9; // mix sums to 1.5
    EXPECT_DEATH(p.validate(), "instruction mix");
}

TEST(Profile, DeathOnBadIpc)
{
    WorkloadProfile p = validProfile();
    p.ipcNominal = 5.0; // beyond a 4-issue machine
    EXPECT_DEATH(p.validate(), "ipcNominal");
    p.ipcNominal = 0.0;
    EXPECT_DEATH(p.validate(), "ipcNominal");
}

TEST(Profile, DeathOnOutOfRangeRates)
{
    WorkloadProfile p = validProfile();
    p.dispatchStallFrac = 1.2;
    EXPECT_DEATH(p.validate(), "dispatchStallFrac");
}

TEST(Profile, DeathOnZeroLength)
{
    WorkloadProfile p = validProfile();
    p.epochs = 0;
    EXPECT_DEATH(p.validate(), "zero-length");
}

TEST(Profile, DeathOnCacheTestWithoutLevel)
{
    WorkloadProfile p = validProfile();
    p.kind = WorkloadKind::CacheTest;
    EXPECT_DEATH(p.validate(), "target cache level");
}

} // namespace
} // namespace vmargin::wl
