/**
 * @file
 * Unit tests for the key=value configuration parser.
 */

#include <gtest/gtest.h>

#include "util/config.hh"

namespace vmargin::util
{
namespace
{

TEST(Config, ParsesKeysAndValues)
{
    const auto config = ConfigFile::fromText(
        "# characterization setup\n"
        "workloads = bwaves, mcf\n"
        "start_mv=930\n"
        "  end_mv  =  830  \n"
        "\n"
        "verbose = true\n");
    EXPECT_TRUE(config.has("workloads"));
    EXPECT_EQ(config.get("start_mv"), "930");
    EXPECT_EQ(config.get("end_mv"), "830");
    EXPECT_EQ(config.keys().size(), 4u);
}

TEST(Config, MissingKeysFallBack)
{
    const auto config = ConfigFile::fromText("a = 1\n");
    EXPECT_FALSE(config.has("b"));
    EXPECT_EQ(config.get("b", "zz"), "zz");
    EXPECT_EQ(config.getInt("b", 7), 7);
    EXPECT_DOUBLE_EQ(config.getDouble("b", 0.5), 0.5);
    EXPECT_TRUE(config.getBool("b", true));
}

TEST(Config, TypedAccessors)
{
    const auto config = ConfigFile::fromText(
        "runs = 10\nfrac = 0.25\nflag = yes\noff = 0\n");
    EXPECT_EQ(config.getInt("runs", 0), 10);
    EXPECT_DOUBLE_EQ(config.getDouble("frac", 0), 0.25);
    EXPECT_TRUE(config.getBool("flag", false));
    EXPECT_FALSE(config.getBool("off", true));
}

TEST(Config, Lists)
{
    const auto config = ConfigFile::fromText(
        "cores = 0, 4 ,7\nempty =\n");
    EXPECT_EQ(config.getList("cores"),
              (std::vector<std::string>{"0", "4", "7"}));
    EXPECT_TRUE(config.getList("empty").empty());
    EXPECT_TRUE(config.getList("missing").empty());
}

TEST(Config, LastValueWins)
{
    const auto config =
        ConfigFile::fromText("a = 1\na = 2\n");
    EXPECT_EQ(config.getInt("a", 0), 2);
    EXPECT_EQ(config.keys().size(), 1u);
}

TEST(Config, FatalOnMalformedLine)
{
    EXPECT_EXIT(ConfigFile::fromText("not a pair\n"),
                ::testing::ExitedWithCode(1), "expected key");
}

TEST(Config, FatalOnBadTypes)
{
    const auto config =
        ConfigFile::fromText("n = twelve\nb = maybe\n");
    EXPECT_EXIT((void)config.getInt("n", 0),
                ::testing::ExitedWithCode(1), "not an integer");
    EXPECT_EXIT((void)config.getBool("b", false),
                ::testing::ExitedWithCode(1), "not a boolean");
}

TEST(Config, FatalOnMissingFile)
{
    EXPECT_EXIT(ConfigFile::fromFile("/nonexistent/vmargin.conf"),
                ::testing::ExitedWithCode(1), "cannot read");
}

} // namespace
} // namespace vmargin::util
