/**
 * @file
 * Unit tests for CSV emission and parsing.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "util/csv.hh"

namespace vmargin::util
{
namespace
{

TEST(CsvWriter, PlainRows)
{
    std::ostringstream os;
    CsvWriter writer(os);
    writer.writeHeader({"a", "b"});
    writer.writeRow({"1", "2"});
    EXPECT_EQ(os.str(), "a,b\n1,2\n");
    EXPECT_EQ(writer.rowsWritten(), 2u);
}

TEST(CsvWriter, EscapesSeparator)
{
    EXPECT_EQ(CsvWriter::escape("a,b"), "\"a,b\"");
}

TEST(CsvWriter, EscapesQuotes)
{
    EXPECT_EQ(CsvWriter::escape("say \"hi\""), "\"say \"\"hi\"\"\"");
}

TEST(CsvWriter, EscapesNewline)
{
    EXPECT_EQ(CsvWriter::escape("a\nb"), "\"a\nb\"");
}

TEST(CsvWriter, LeavesPlainAlone)
{
    EXPECT_EQ(CsvWriter::escape("hello"), "hello");
}

TEST(CsvWriter, CustomSeparator)
{
    std::ostringstream os;
    CsvWriter writer(os, ';');
    writer.writeRow({"a;x", "b"});
    EXPECT_EQ(os.str(), "\"a;x\";b\n");
}

TEST(ParseCsv, RoundTrip)
{
    std::ostringstream os;
    CsvWriter writer(os);
    writer.writeHeader({"name", "value"});
    writer.writeRow({"plain", "1"});
    writer.writeRow({"with,comma", "2"});
    writer.writeRow({"with \"quote\"", "3"});
    writer.writeRow({"with\nnewline", "4"});

    const CsvDocument doc = parseCsv(os.str());
    ASSERT_EQ(doc.header.size(), 2u);
    ASSERT_EQ(doc.rows.size(), 4u);
    EXPECT_EQ(doc.at(0, "name"), "plain");
    EXPECT_EQ(doc.at(1, "name"), "with,comma");
    EXPECT_EQ(doc.at(2, "name"), "with \"quote\"");
    EXPECT_EQ(doc.at(3, "name"), "with\nnewline");
    EXPECT_EQ(doc.at(3, "value"), "4");
}

TEST(ParseCsv, Empty)
{
    const CsvDocument doc = parseCsv("");
    EXPECT_TRUE(doc.header.empty());
    EXPECT_TRUE(doc.rows.empty());
}

TEST(ParseCsv, HeaderOnly)
{
    const CsvDocument doc = parseCsv("a,b,c\n");
    EXPECT_EQ(doc.header.size(), 3u);
    EXPECT_TRUE(doc.rows.empty());
}

TEST(ParseCsv, CrLfLineEndings)
{
    const CsvDocument doc = parseCsv("a,b\r\n1,2\r\n");
    ASSERT_EQ(doc.rows.size(), 1u);
    EXPECT_EQ(doc.at(0, "b"), "2");
}

TEST(ParseCsv, MissingColumnIndex)
{
    const CsvDocument doc = parseCsv("a,b\n1,2\n");
    EXPECT_EQ(doc.columnIndex("a"), 0);
    EXPECT_EQ(doc.columnIndex("b"), 1);
    EXPECT_EQ(doc.columnIndex("zzz"), -1);
}

TEST(ParseCsvLine, EmptyFieldsKept)
{
    const auto fields = parseCsvLine("a,,c");
    ASSERT_EQ(fields.size(), 3u);
    EXPECT_EQ(fields[1], "");
}

TEST(ParseCsvLine, QuotedSeparator)
{
    const auto fields = parseCsvLine("\"a,b\",c");
    ASSERT_EQ(fields.size(), 2u);
    EXPECT_EQ(fields[0], "a,b");
}

TEST(ParseCsv, NoTrailingNewline)
{
    const CsvDocument doc = parseCsv("a,b\n1,2");
    ASSERT_EQ(doc.rows.size(), 1u);
    EXPECT_EQ(doc.at(0, "b"), "2");
}

} // namespace
} // namespace vmargin::util
