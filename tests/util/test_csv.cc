/**
 * @file
 * Unit tests for CSV emission and parsing.
 */

#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "util/csv.hh"

namespace vmargin::util
{
namespace
{

TEST(CsvWriter, PlainRows)
{
    std::ostringstream os;
    CsvWriter writer(os);
    writer.writeHeader({"a", "b"});
    writer.writeRow({"1", "2"});
    EXPECT_EQ(os.str(), "a,b\n1,2\n");
    EXPECT_EQ(writer.rowsWritten(), 2u);
}

TEST(CsvWriter, EscapesSeparator)
{
    EXPECT_EQ(CsvWriter::escape("a,b"), "\"a,b\"");
}

TEST(CsvWriter, EscapesQuotes)
{
    EXPECT_EQ(CsvWriter::escape("say \"hi\""), "\"say \"\"hi\"\"\"");
}

TEST(CsvWriter, EscapesNewline)
{
    EXPECT_EQ(CsvWriter::escape("a\nb"), "\"a\nb\"");
}

TEST(CsvWriter, LeavesPlainAlone)
{
    EXPECT_EQ(CsvWriter::escape("hello"), "hello");
}

TEST(CsvWriter, CustomSeparator)
{
    std::ostringstream os;
    CsvWriter writer(os, ';');
    writer.writeRow({"a;x", "b"});
    EXPECT_EQ(os.str(), "\"a;x\";b\n");
}

TEST(ParseCsv, RoundTrip)
{
    std::ostringstream os;
    CsvWriter writer(os);
    writer.writeHeader({"name", "value"});
    writer.writeRow({"plain", "1"});
    writer.writeRow({"with,comma", "2"});
    writer.writeRow({"with \"quote\"", "3"});
    writer.writeRow({"with\nnewline", "4"});

    const CsvDocument doc = parseCsv(os.str());
    ASSERT_EQ(doc.header.size(), 2u);
    ASSERT_EQ(doc.rows.size(), 4u);
    EXPECT_EQ(doc.at(0, "name"), "plain");
    EXPECT_EQ(doc.at(1, "name"), "with,comma");
    EXPECT_EQ(doc.at(2, "name"), "with \"quote\"");
    EXPECT_EQ(doc.at(3, "name"), "with\nnewline");
    EXPECT_EQ(doc.at(3, "value"), "4");
}

TEST(ParseCsv, Empty)
{
    const CsvDocument doc = parseCsv("");
    EXPECT_TRUE(doc.header.empty());
    EXPECT_TRUE(doc.rows.empty());
}

TEST(ParseCsv, HeaderOnly)
{
    const CsvDocument doc = parseCsv("a,b,c\n");
    EXPECT_EQ(doc.header.size(), 3u);
    EXPECT_TRUE(doc.rows.empty());
}

TEST(ParseCsv, CrLfLineEndings)
{
    const CsvDocument doc = parseCsv("a,b\r\n1,2\r\n");
    ASSERT_EQ(doc.rows.size(), 1u);
    EXPECT_EQ(doc.at(0, "b"), "2");
}

TEST(ParseCsv, MissingColumnIndex)
{
    const CsvDocument doc = parseCsv("a,b\n1,2\n");
    EXPECT_EQ(doc.columnIndex("a"), 0);
    EXPECT_EQ(doc.columnIndex("b"), 1);
    EXPECT_EQ(doc.columnIndex("zzz"), -1);
}

TEST(ParseCsvLine, EmptyFieldsKept)
{
    const auto fields = parseCsvLine("a,,c");
    ASSERT_EQ(fields.size(), 3u);
    EXPECT_EQ(fields[1], "");
}

TEST(ParseCsvLine, QuotedSeparator)
{
    const auto fields = parseCsvLine("\"a,b\",c");
    ASSERT_EQ(fields.size(), 2u);
    EXPECT_EQ(fields[0], "a,b");
}

TEST(ParseCsv, NoTrailingNewline)
{
    const CsvDocument doc = parseCsv("a,b\n1,2");
    ASSERT_EQ(doc.rows.size(), 1u);
    EXPECT_EQ(doc.at(0, "b"), "2");
}

TEST(CsvRoundTrip, SingleEmptyFieldRowSurvives)
{
    // Regression: a row of exactly one empty field used to emit a
    // bare newline, which the parser dropped as a blank line.
    std::ostringstream os;
    CsvWriter writer(os);
    writer.writeHeader({"only"});
    writer.writeRow({""});
    writer.writeRow({"x"});
    EXPECT_EQ(os.str(), "only\n\"\"\nx\n");

    const CsvDocument doc = parseCsv(os.str());
    ASSERT_EQ(doc.rows.size(), 2u);
    EXPECT_EQ(doc.at(0, "only"), "");
    EXPECT_EQ(doc.at(1, "only"), "x");
}

TEST(CsvRoundTrip, EmptyEdgeFieldsSurvive)
{
    std::ostringstream os;
    CsvWriter writer(os);
    writer.writeHeader({"a", "b", "c"});
    writer.writeRow({"", "mid", ""});
    writer.writeRow({"", "", ""});

    const CsvDocument doc = parseCsv(os.str());
    ASSERT_EQ(doc.rows.size(), 2u);
    EXPECT_EQ(doc.at(0, "a"), "");
    EXPECT_EQ(doc.at(0, "b"), "mid");
    EXPECT_EQ(doc.at(0, "c"), "");
    EXPECT_EQ(doc.at(1, "a"), "");
    EXPECT_EQ(doc.at(1, "c"), "");
}

TEST(CsvRoundTrip, HostileFieldsExhaustive)
{
    // Every pairing of the characters the quoting rules exist for:
    // separator, quote, newline, carriage return, and mixtures.
    const std::vector<std::string> hostile = {
        "",          "plain",       ",",       "\"",
        "\n",        "\r\n",        "a,b",     "say \"hi\"",
        "line1\nline2", "\"quoted\"", ",lead",  "trail,",
        "\"\"",      "a\r\nb,c\"d", " spaced ", "5,\"6\"\n7",
    };
    std::ostringstream os;
    CsvWriter writer(os);
    writer.writeHeader({"left", "right"});
    size_t expected_rows = 0;
    for (const auto &left : hostile)
        for (const auto &right : hostile) {
            writer.writeRow({left, right});
            ++expected_rows;
        }

    const CsvDocument doc = parseCsv(os.str());
    ASSERT_EQ(doc.rows.size(), expected_rows);
    size_t row = 0;
    for (const auto &left : hostile)
        for (const auto &right : hostile) {
            EXPECT_EQ(doc.at(row, "left"), left)
                << "row " << row;
            EXPECT_EQ(doc.at(row, "right"), right)
                << "row " << row;
            ++row;
        }
}

TEST(CsvRoundTrip, SingleHostileColumn)
{
    // One-column documents exercise the bare-newline edge cases the
    // multi-column round trip can't reach.
    const std::vector<std::string> hostile = {
        "", "a", "\n", ",", "\"\"", "b\nc", "",
    };
    std::ostringstream os;
    CsvWriter writer(os);
    writer.writeHeader({"only"});
    for (const auto &value : hostile)
        writer.writeRow({value});

    const CsvDocument doc = parseCsv(os.str());
    ASSERT_EQ(doc.rows.size(), hostile.size());
    for (size_t i = 0; i < hostile.size(); ++i)
        EXPECT_EQ(doc.at(i, "only"), hostile[i]) << "row " << i;
}

} // namespace
} // namespace vmargin::util
