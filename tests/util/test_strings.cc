/**
 * @file
 * Unit tests for string helpers.
 */

#include <gtest/gtest.h>

#include "util/strings.hh"

namespace vmargin::util
{
namespace
{

TEST(Split, Basic)
{
    const auto parts = split("a,b,c", ',');
    ASSERT_EQ(parts.size(), 3u);
    EXPECT_EQ(parts[0], "a");
    EXPECT_EQ(parts[2], "c");
}

TEST(Split, KeepsEmptyFields)
{
    const auto parts = split(",a,", ',');
    ASSERT_EQ(parts.size(), 3u);
    EXPECT_EQ(parts[0], "");
    EXPECT_EQ(parts[2], "");
}

TEST(Split, NoSeparator)
{
    const auto parts = split("abc", ',');
    ASSERT_EQ(parts.size(), 1u);
    EXPECT_EQ(parts[0], "abc");
}

TEST(Trim, Whitespace)
{
    EXPECT_EQ(trim("  hi \t\n"), "hi");
    EXPECT_EQ(trim(""), "");
    EXPECT_EQ(trim("   "), "");
    EXPECT_EQ(trim("a"), "a");
}

TEST(Join, Basic)
{
    EXPECT_EQ(join({"a", "b", "c"}, ", "), "a, b, c");
    EXPECT_EQ(join({}, ","), "");
    EXPECT_EQ(join({"x"}, ","), "x");
}

TEST(StartsEndsWith, Basic)
{
    EXPECT_TRUE(startsWith("voltage=980", "voltage="));
    EXPECT_FALSE(startsWith("volt", "voltage"));
    EXPECT_TRUE(endsWith("report.csv", ".csv"));
    EXPECT_FALSE(endsWith("csv", "report.csv"));
}

TEST(ToLower, Basic)
{
    EXPECT_EQ(toLower("TTT Chip"), "ttt chip");
}

TEST(IsInteger, Accepts)
{
    EXPECT_TRUE(isInteger("42"));
    EXPECT_TRUE(isInteger("-7"));
    EXPECT_TRUE(isInteger("0"));
}

TEST(IsInteger, Rejects)
{
    EXPECT_FALSE(isInteger(""));
    EXPECT_FALSE(isInteger("4.2"));
    EXPECT_FALSE(isInteger("12a"));
    EXPECT_FALSE(isInteger("a12"));
}

TEST(IsNumber, Accepts)
{
    EXPECT_TRUE(isNumber("3.14"));
    EXPECT_TRUE(isNumber("-1e-3"));
    EXPECT_TRUE(isNumber("42"));
}

TEST(IsNumber, Rejects)
{
    EXPECT_FALSE(isNumber(""));
    EXPECT_FALSE(isNumber("1.2.3"));
    EXPECT_FALSE(isNumber("volt"));
}

TEST(FormatDouble, FixedPrecision)
{
    EXPECT_EQ(formatDouble(0.1234, 2), "0.12");
    EXPECT_EQ(formatDouble(19.4, 1), "19.4");
    EXPECT_EQ(formatDouble(-2.5, 0), "-2");
}

TEST(Pad, Basic)
{
    EXPECT_EQ(padRight("ab", 4), "ab  ");
    EXPECT_EQ(padLeft("ab", 4), "  ab");
    EXPECT_EQ(padRight("abcd", 2), "abcd");
    EXPECT_EQ(padLeft("abcd", 2), "abcd");
}

} // namespace
} // namespace vmargin::util
