/**
 * @file
 * Unit tests for the deterministic RNG layer.
 */

#include <gtest/gtest.h>

#include <set>

#include "util/rng.hh"

namespace vmargin::util
{
namespace
{

TEST(SplitMix, Deterministic)
{
    uint64_t s1 = 42, s2 = 42;
    EXPECT_EQ(splitMix64(s1), splitMix64(s2));
    EXPECT_EQ(s1, s2);
}

TEST(SplitMix, AdvancesState)
{
    uint64_t s = 42;
    const uint64_t a = splitMix64(s);
    const uint64_t b = splitMix64(s);
    EXPECT_NE(a, b);
}

TEST(MixSeed, OrderSensitive)
{
    EXPECT_NE(mixSeed(1, 2), mixSeed(2, 1));
}

TEST(MixSeed, NearbyInputsDiverge)
{
    // Adjacent experiment coordinates must produce unrelated seeds.
    const Seed a = mixSeed(100, 900);
    const Seed b = mixSeed(100, 905);
    EXPECT_NE(a, b);
    // Both halves of the word should differ (strong mixing).
    EXPECT_NE(a >> 32, b >> 32);
    EXPECT_NE(a & 0xffffffff, b & 0xffffffff);
}

TEST(HashSeed, StableAndDistinct)
{
    EXPECT_EQ(hashSeed("bwaves"), hashSeed("bwaves"));
    EXPECT_NE(hashSeed("bwaves"), hashSeed("bwave"));
    EXPECT_NE(hashSeed(""), hashSeed("a"));
}

TEST(Rng, ReproducibleStream)
{
    Rng a(123), b(123);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiffer)
{
    Rng a(123), b(124);
    int same = 0;
    for (int i = 0; i < 64; ++i)
        same += a.next() == b.next();
    EXPECT_LT(same, 2);
}

TEST(Rng, UniformInUnitInterval)
{
    Rng rng(7);
    for (int i = 0; i < 10000; ++i) {
        const double u = rng.uniform();
        EXPECT_GE(u, 0.0);
        EXPECT_LT(u, 1.0);
    }
}

TEST(Rng, UniformMeanNearHalf)
{
    Rng rng(7);
    double sum = 0.0;
    const int n = 100000;
    for (int i = 0; i < n; ++i)
        sum += rng.uniform();
    EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(Rng, UniformIntBoundsInclusive)
{
    Rng rng(11);
    std::set<int64_t> seen;
    for (int i = 0; i < 1000; ++i) {
        const int64_t v = rng.uniformInt(-3, 3);
        EXPECT_GE(v, -3);
        EXPECT_LE(v, 3);
        seen.insert(v);
    }
    EXPECT_EQ(seen.size(), 7u); // all values hit
}

TEST(Rng, UniformIntDegenerateRange)
{
    Rng rng(11);
    for (int i = 0; i < 10; ++i)
        EXPECT_EQ(rng.uniformInt(5, 5), 5);
}

TEST(Rng, GaussianMoments)
{
    Rng rng(13);
    double sum = 0.0, sq = 0.0;
    const int n = 200000;
    for (int i = 0; i < n; ++i) {
        const double g = rng.gaussian();
        sum += g;
        sq += g * g;
    }
    EXPECT_NEAR(sum / n, 0.0, 0.02);
    EXPECT_NEAR(sq / n, 1.0, 0.03);
}

TEST(Rng, GaussianShifted)
{
    Rng rng(13);
    double sum = 0.0;
    const int n = 50000;
    for (int i = 0; i < n; ++i)
        sum += rng.gaussian(10.0, 2.0);
    EXPECT_NEAR(sum / n, 10.0, 0.1);
}

TEST(Rng, BernoulliExtremes)
{
    Rng rng(17);
    for (int i = 0; i < 100; ++i) {
        EXPECT_FALSE(rng.bernoulli(0.0));
        EXPECT_TRUE(rng.bernoulli(1.0));
    }
    // Out-of-range p is clamped, not UB.
    EXPECT_FALSE(rng.bernoulli(-0.5));
    EXPECT_TRUE(rng.bernoulli(1.5));
}

TEST(Rng, BernoulliRate)
{
    Rng rng(17);
    int hits = 0;
    const int n = 100000;
    for (int i = 0; i < n; ++i)
        hits += rng.bernoulli(0.3);
    EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
}

TEST(Rng, PoissonZeroMean)
{
    Rng rng(19);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(rng.poisson(0.0), 0u);
}

TEST(Rng, PoissonSmallMean)
{
    Rng rng(19);
    double sum = 0.0;
    const int n = 50000;
    for (int i = 0; i < n; ++i)
        sum += static_cast<double>(rng.poisson(2.5));
    EXPECT_NEAR(sum / n, 2.5, 0.1);
}

TEST(Rng, PoissonLargeMeanUsesApproximation)
{
    Rng rng(19);
    double sum = 0.0;
    const int n = 20000;
    for (int i = 0; i < n; ++i)
        sum += static_cast<double>(rng.poisson(200.0));
    EXPECT_NEAR(sum / n, 200.0, 2.0);
}

TEST(Rng, BinomialEdges)
{
    Rng rng(23);
    EXPECT_EQ(rng.binomial(0, 0.5), 0u);
    EXPECT_EQ(rng.binomial(10, 0.0), 0u);
    EXPECT_EQ(rng.binomial(10, 1.0), 10u);
}

TEST(Rng, BinomialSmallN)
{
    Rng rng(23);
    double sum = 0.0;
    const int n = 50000;
    for (int i = 0; i < n; ++i) {
        const uint64_t v = rng.binomial(20, 0.25);
        EXPECT_LE(v, 20u);
        sum += static_cast<double>(v);
    }
    EXPECT_NEAR(sum / n, 5.0, 0.1);
}

TEST(Rng, BinomialLargeNBounded)
{
    Rng rng(23);
    for (int i = 0; i < 1000; ++i)
        EXPECT_LE(rng.binomial(100000, 0.9), 100000u);
}

TEST(Rng, ExponentialMean)
{
    Rng rng(29);
    double sum = 0.0;
    const int n = 100000;
    for (int i = 0; i < n; ++i) {
        const double v = rng.exponential(4.0);
        EXPECT_GE(v, 0.0);
        sum += v;
    }
    EXPECT_NEAR(sum / n, 0.25, 0.01);
}

} // namespace
} // namespace vmargin::util
