/**
 * @file
 * Work-stealing thread pool: completion guarantees, wait() barriers,
 * reuse across batches, and stealing under skewed load.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <vector>

#include "util/threadpool.hh"

namespace vmargin::util
{
namespace
{

TEST(ThreadPool, DefaultWorkerCountIsPositive)
{
    EXPECT_GE(ThreadPool::defaultWorkerCount(), 1);
    ThreadPool pool;
    EXPECT_EQ(pool.workerCount(),
              ThreadPool::defaultWorkerCount());
}

TEST(ThreadPool, RunsEverySubmittedTask)
{
    for (const int workers : {1, 2, 8}) {
        ThreadPool pool(workers);
        std::atomic<int> counter{0};
        for (int i = 0; i < 100; ++i)
            pool.submit([&counter] { ++counter; });
        pool.wait();
        EXPECT_EQ(counter.load(), 100) << workers << " workers";
    }
}

TEST(ThreadPool, WaitIsABarrier)
{
    ThreadPool pool(4);
    std::vector<int> results(64, 0);
    for (size_t i = 0; i < results.size(); ++i)
        pool.submit([&results, i] {
            results[i] = static_cast<int>(i) + 1;
        });
    pool.wait();
    // After wait() every slot must be written — no synchronization
    // beyond the barrier is needed to read them.
    const int sum =
        std::accumulate(results.begin(), results.end(), 0);
    EXPECT_EQ(sum, 64 * 65 / 2);
}

TEST(ThreadPool, ReusableAcrossBatches)
{
    ThreadPool pool(3);
    std::atomic<int> counter{0};
    for (int batch = 0; batch < 5; ++batch) {
        for (int i = 0; i < 20; ++i)
            pool.submit([&counter] { ++counter; });
        pool.wait();
        EXPECT_EQ(counter.load(), (batch + 1) * 20);
    }
}

TEST(ThreadPool, SkewedSubmissionStillCompletes)
{
    // Round-robin distribution plus stealing: tasks that spawn no
    // further work from a single submitter must still all run, even
    // with many more tasks than workers.
    ThreadPool pool(2);
    std::atomic<int> counter{0};
    for (int i = 0; i < 500; ++i)
        pool.submit([&counter] { ++counter; });
    pool.wait();
    EXPECT_EQ(counter.load(), 500);
}

TEST(ThreadPool, DestructorDrainsOutstandingWork)
{
    std::atomic<int> counter{0};
    {
        ThreadPool pool(4);
        for (int i = 0; i < 50; ++i)
            pool.submit([&counter] { ++counter; });
        // No wait(): the destructor must finish the queue first.
    }
    EXPECT_EQ(counter.load(), 50);
}

TEST(ThreadPoolDeath, RejectsNegativeWorkerCount)
{
    EXPECT_EXIT(ThreadPool(-1), ::testing::ExitedWithCode(1),
                "worker count");
}

} // namespace
} // namespace vmargin::util
