/**
 * @file
 * Unit tests for the ASCII table printer.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "util/table.hh"

namespace vmargin::util
{
namespace
{

TEST(Table, AlignsColumns)
{
    TablePrinter table({"name", "mV"});
    table.addRow({"bwaves", "875"});
    table.addRow({"mcf", "855"});
    std::ostringstream os;
    table.print(os);
    const std::string out = os.str();
    // Header, rule, two rows.
    EXPECT_EQ(std::count(out.begin(), out.end(), '\n'), 4);
    EXPECT_NE(out.find("bwaves"), std::string::npos);
    EXPECT_NE(out.find("---"), std::string::npos);
}

TEST(Table, NumericRowFormatting)
{
    TablePrinter table({"bench", "savings"});
    table.addNumericRow("leslie3d", {19.4321}, 1);
    std::ostringstream os;
    table.print(os);
    EXPECT_NE(os.str().find("19.4"), std::string::npos);
    EXPECT_EQ(os.str().find("19.43"), std::string::npos);
}

TEST(Table, RowCount)
{
    TablePrinter table({"a"});
    EXPECT_EQ(table.rowCount(), 0u);
    table.addRow({"x"});
    EXPECT_EQ(table.rowCount(), 1u);
}

TEST(Table, LeftAlignment)
{
    TablePrinter table({"name", "v"});
    table.setAlignment({Align::Left, Align::Right});
    table.addRow({"ab", "1"});
    table.addRow({"abcdef", "2"});
    std::ostringstream os;
    table.print(os);
    // Left-aligned cell is padded on the right.
    EXPECT_NE(os.str().find("ab    "), std::string::npos);
}

TEST(Banner, ContainsTitle)
{
    std::ostringstream os;
    printBanner(os, "Figure 3");
    EXPECT_NE(os.str().find("==== Figure 3 ===="), std::string::npos);
}

} // namespace
} // namespace vmargin::util
