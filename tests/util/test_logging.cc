/**
 * @file
 * Unit tests for the logging layer: level filtering and the fatal
 * paths.
 */

#include <gtest/gtest.h>

#include "util/logging.hh"

namespace vmargin::util
{
namespace
{

/** RAII guard restoring the log level after a test. */
class LevelGuard
{
  public:
    LevelGuard() : saved_(logLevel()) {}
    ~LevelGuard() { setLogLevel(saved_); }

  private:
    LogLevel saved_;
};

TEST(Logging, LevelRoundTrip)
{
    LevelGuard guard;
    setLogLevel(LogLevel::Silent);
    EXPECT_EQ(logLevel(), LogLevel::Silent);
    setLogLevel(LogLevel::Info);
    EXPECT_EQ(logLevel(), LogLevel::Info);
}

TEST(Logging, WarnRespectsSilentLevel)
{
    LevelGuard guard;
    setLogLevel(LogLevel::Silent);
    ::testing::internal::CaptureStderr();
    warn("should not appear");
    EXPECT_EQ(::testing::internal::GetCapturedStderr(), "");
}

TEST(Logging, WarnEmitsAtWarnLevel)
{
    LevelGuard guard;
    setLogLevel(LogLevel::Warn);
    ::testing::internal::CaptureStderr();
    warnf("margin ", 42, " mV");
    const std::string out =
        ::testing::internal::GetCapturedStderr();
    EXPECT_NE(out.find("warn: margin 42 mV"), std::string::npos);
}

TEST(Logging, InformOnlyAtInfoLevel)
{
    LevelGuard guard;
    setLogLevel(LogLevel::Warn);
    ::testing::internal::CaptureStdout();
    inform("hidden");
    EXPECT_EQ(::testing::internal::GetCapturedStdout(), "");

    setLogLevel(LogLevel::Info);
    ::testing::internal::CaptureStdout();
    informf("chip ", "TTT");
    EXPECT_NE(::testing::internal::GetCapturedStdout().find(
                  "info: chip TTT"),
              std::string::npos);
}

TEST(Logging, ConcatFormatsMixedTypes)
{
    EXPECT_EQ(concat("v=", 905, " s=", 2.5), "v=905 s=2.5");
    EXPECT_EQ(concat(), "");
}

TEST(Logging, PanicAborts)
{
    EXPECT_DEATH(panic("invariant broken"),
                 "panic: invariant broken");
    EXPECT_DEATH(panicf("bad core ", 9), "panic: bad core 9");
}

TEST(Logging, FatalExitsWithOne)
{
    EXPECT_EXIT(fatalError("user error"),
                ::testing::ExitedWithCode(1), "fatal: user error");
}

} // namespace
} // namespace vmargin::util
