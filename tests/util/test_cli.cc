/**
 * @file
 * Unit tests for the CLI option parser.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "util/cli.hh"

namespace vmargin::util
{
namespace
{

std::vector<const char *>
argvOf(std::initializer_list<const char *> args)
{
    return std::vector<const char *>(args);
}

TEST(Cli, Defaults)
{
    CliParser cli("prog", "test");
    cli.addOption("chip", "TTT", "chip corner");
    const auto argv = argvOf({"prog"});
    ASSERT_TRUE(cli.parse(static_cast<int>(argv.size()), argv.data()));
    EXPECT_EQ(cli.value("chip"), "TTT");
}

TEST(Cli, SpaceSeparatedValue)
{
    CliParser cli("prog", "test");
    cli.addOption("chip", "TTT", "chip corner");
    const auto argv = argvOf({"prog", "--chip", "TFF"});
    ASSERT_TRUE(cli.parse(static_cast<int>(argv.size()), argv.data()));
    EXPECT_EQ(cli.value("chip"), "TFF");
}

TEST(Cli, EqualsValue)
{
    CliParser cli("prog", "test");
    cli.addOption("chip", "TTT", "chip corner");
    const auto argv = argvOf({"prog", "--chip=TSS"});
    ASSERT_TRUE(cli.parse(static_cast<int>(argv.size()), argv.data()));
    EXPECT_EQ(cli.value("chip"), "TSS");
}

TEST(Cli, Flags)
{
    CliParser cli("prog", "test");
    cli.addFlag("verbose", "chatty");
    const auto argv = argvOf({"prog", "--verbose"});
    ASSERT_TRUE(cli.parse(static_cast<int>(argv.size()), argv.data()));
    EXPECT_TRUE(cli.flag("verbose"));
}

TEST(Cli, FlagAbsent)
{
    CliParser cli("prog", "test");
    cli.addFlag("verbose", "chatty");
    const auto argv = argvOf({"prog"});
    ASSERT_TRUE(cli.parse(static_cast<int>(argv.size()), argv.data()));
    EXPECT_FALSE(cli.flag("verbose"));
}

TEST(Cli, UnknownOptionFails)
{
    CliParser cli("prog", "test");
    const auto argv = argvOf({"prog", "--nope"});
    EXPECT_FALSE(
        cli.parse(static_cast<int>(argv.size()), argv.data()));
}

TEST(Cli, MissingValueFails)
{
    CliParser cli("prog", "test");
    cli.addOption("chip", "TTT", "chip corner");
    const auto argv = argvOf({"prog", "--chip"});
    EXPECT_FALSE(
        cli.parse(static_cast<int>(argv.size()), argv.data()));
}

TEST(Cli, HelpReturnsFalse)
{
    CliParser cli("prog", "test");
    const auto argv = argvOf({"prog", "--help"});
    EXPECT_FALSE(
        cli.parse(static_cast<int>(argv.size()), argv.data()));
}

TEST(Cli, IntAndDoubleValues)
{
    CliParser cli("prog", "test");
    cli.addOption("runs", "10", "run count");
    cli.addOption("frac", "0.2", "fraction");
    const auto argv = argvOf({"prog", "--runs", "25"});
    ASSERT_TRUE(cli.parse(static_cast<int>(argv.size()), argv.data()));
    EXPECT_EQ(cli.intValue("runs"), 25);
    EXPECT_DOUBLE_EQ(cli.doubleValue("frac"), 0.2);
}

TEST(Cli, Positional)
{
    CliParser cli("prog", "test");
    cli.addOption("chip", "TTT", "chip corner");
    const auto argv = argvOf({"prog", "bwaves", "--chip", "TFF",
                              "mcf"});
    ASSERT_TRUE(cli.parse(static_cast<int>(argv.size()), argv.data()));
    ASSERT_EQ(cli.positional().size(), 2u);
    EXPECT_EQ(cli.positional()[0], "bwaves");
    EXPECT_EQ(cli.positional()[1], "mcf");
}

TEST(Cli, RepeatableCollectsEveryOccurrence)
{
    CliParser cli("prog", "test");
    cli.addRepeatable("chip", "fleet chip CORNER[:serial]");
    const auto argv = argvOf(
        {"prog", "--chip", "TTT", "--chip=TFF:2", "--chip", "TSS"});
    ASSERT_TRUE(cli.parse(static_cast<int>(argv.size()), argv.data()));
    const auto &chips = cli.values("chip");
    ASSERT_EQ(chips.size(), 3u);
    EXPECT_EQ(chips[0], "TTT");
    EXPECT_EQ(chips[1], "TFF:2");
    EXPECT_EQ(chips[2], "TSS");
}

TEST(Cli, RepeatableUnsetIsEmpty)
{
    CliParser cli("prog", "test");
    cli.addRepeatable("chip", "fleet chip");
    const auto argv = argvOf({"prog"});
    ASSERT_TRUE(cli.parse(static_cast<int>(argv.size()), argv.data()));
    EXPECT_TRUE(cli.values("chip").empty());
}

TEST(Cli, RepeatableMissingValueFails)
{
    CliParser cli("prog", "test");
    cli.addRepeatable("chip", "fleet chip");
    const auto argv = argvOf({"prog", "--chip"});
    EXPECT_FALSE(
        cli.parse(static_cast<int>(argv.size()), argv.data()));
}

TEST(CliDeath, ValueOnRepeatablePanics)
{
    CliParser cli("prog", "test");
    cli.addRepeatable("chip", "fleet chip");
    EXPECT_DEATH((void)cli.value("chip"), "repeatable");
}

TEST(CliDeath, ValuesOnScalarPanics)
{
    CliParser cli("prog", "test");
    cli.addOption("chip", "TTT", "chip corner");
    EXPECT_DEATH((void)cli.values("chip"), "not repeatable");
}

TEST(Cli, HelpMarksRepeatable)
{
    CliParser cli("prog", "test");
    cli.addRepeatable("chip", "fleet chip");
    std::ostringstream os;
    cli.printHelp(os);
    EXPECT_NE(os.str().find("(repeatable)"), std::string::npos);
}

TEST(Cli, HelpTextListsOptions)
{
    CliParser cli("prog", "does things");
    cli.addOption("chip", "TTT", "chip corner");
    cli.addFlag("verbose", "chatty");
    std::ostringstream os;
    cli.printHelp(os);
    const std::string help = os.str();
    EXPECT_NE(help.find("--chip"), std::string::npos);
    EXPECT_NE(help.find("--verbose"), std::string::npos);
    EXPECT_NE(help.find("TTT"), std::string::npos);
}

/** Column where the help text starts on one rendered option row,
 *  i.e. the first non-space past the option name. */
size_t
helpColumn(const std::string &row)
{
    const size_t name_end = row.find(' ', row.find("--"));
    if (name_end == std::string::npos)
        return std::string::npos;
    return row.find_first_not_of(' ', row.find("<value>") !=
                                             std::string::npos
                                         ? row.find("<value>") + 7
                                         : name_end);
}

TEST(Cli, HelpAlignsLongOptionNames)
{
    // A name past the historical 28-char pad used to jam its help
    // text against the option; every row must now share one column.
    CliParser cli("prog", "test");
    cli.addOption("chip", "TTT", "chip corner");
    cli.addOption("quarantine-hold-rounds-before-canary", "3",
                  "a deliberately long knob");
    cli.addFlag("verbose", "chatty");
    std::ostringstream os;
    cli.printHelp(os);

    std::vector<std::string> rows;
    std::istringstream in(os.str());
    for (std::string line; std::getline(in, line);)
        if (line.find("  --") == 0)
            rows.push_back(line);
    ASSERT_GE(rows.size(), 4u); // 3 options + --help

    const size_t column = helpColumn(rows.front());
    ASSERT_NE(column, std::string::npos);
    for (const auto &row : rows) {
        EXPECT_EQ(helpColumn(row), column) << "misaligned: " << row;
        // And the long option itself must keep >= 2 spaces of gap.
        EXPECT_NE(row.substr(column - 2, 2), "e>")
            << "help text jammed against the option: " << row;
    }
}

TEST(CliDeath, IntValueOverflowIsFatal)
{
    CliParser cli("prog", "test");
    cli.addOption("runs", "10", "run count");
    const auto argv =
        argvOf({"prog", "--runs", "99999999999999999999"});
    ASSERT_TRUE(
        cli.parse(static_cast<int>(argv.size()), argv.data()));
    EXPECT_EXIT((void)cli.intValue("runs"),
                ::testing::ExitedWithCode(1),
                "option --runs: '99999999999999999999' is out of "
                "range");
}

TEST(CliDeath, IntValueRejectsNonInteger)
{
    CliParser cli("prog", "test");
    cli.addOption("runs", "10", "run count");
    const auto argv = argvOf({"prog", "--runs", "ten"});
    ASSERT_TRUE(
        cli.parse(static_cast<int>(argv.size()), argv.data()));
    EXPECT_EXIT((void)cli.intValue("runs"),
                ::testing::ExitedWithCode(1),
                "option --runs: 'ten' is not an integer");
}

TEST(CliDeath, DoubleValueOverflowIsFatal)
{
    CliParser cli("prog", "test");
    cli.addOption("frac", "0.2", "fraction");
    const auto argv = argvOf({"prog", "--frac", "1e999"});
    ASSERT_TRUE(
        cli.parse(static_cast<int>(argv.size()), argv.data()));
    EXPECT_EXIT((void)cli.doubleValue("frac"),
                ::testing::ExitedWithCode(1),
                "option --frac: '1e999' overflows a double");
}

TEST(Parse, ParseLongRoundTrips)
{
    EXPECT_EQ(parseLong("42", "t"), 42);
    EXPECT_EQ(parseLong("-7", "t"), -7);
    EXPECT_EQ(parseLong("0", "t"), 0);
}

TEST(Parse, ParseDoubleRoundTrips)
{
    EXPECT_DOUBLE_EQ(parseDouble("0.25", "t"), 0.25);
    EXPECT_DOUBLE_EQ(parseDouble("-3e2", "t"), -300.0);
    // Gradual underflow is a representable result, not an error.
    EXPECT_GE(parseDouble("1e-320", "t"), 0.0);
}

TEST(ParseDeath, ParseLongRejectsGarbageAndRange)
{
    EXPECT_EXIT((void)parseLong("12abc", "ctx"),
                ::testing::ExitedWithCode(1),
                "ctx: '12abc' is not an integer");
    EXPECT_EXIT((void)parseLong("", "ctx"),
                ::testing::ExitedWithCode(1),
                "ctx: '' is not an integer");
    EXPECT_EXIT((void)parseLong("-99999999999999999999", "ctx"),
                ::testing::ExitedWithCode(1), "out of range");
}

TEST(ParseDeath, ParseDoubleRejectsGarbageAndOverflow)
{
    EXPECT_EXIT((void)parseDouble("fast", "ctx"),
                ::testing::ExitedWithCode(1),
                "ctx: 'fast' is not a number");
    EXPECT_EXIT((void)parseDouble("-1e999", "ctx"),
                ::testing::ExitedWithCode(1),
                "overflows a double");
}

} // namespace
} // namespace vmargin::util
