/**
 * @file
 * Unit tests for the CLI option parser.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "util/cli.hh"

namespace vmargin::util
{
namespace
{

std::vector<const char *>
argvOf(std::initializer_list<const char *> args)
{
    return std::vector<const char *>(args);
}

TEST(Cli, Defaults)
{
    CliParser cli("prog", "test");
    cli.addOption("chip", "TTT", "chip corner");
    const auto argv = argvOf({"prog"});
    ASSERT_TRUE(cli.parse(static_cast<int>(argv.size()), argv.data()));
    EXPECT_EQ(cli.value("chip"), "TTT");
}

TEST(Cli, SpaceSeparatedValue)
{
    CliParser cli("prog", "test");
    cli.addOption("chip", "TTT", "chip corner");
    const auto argv = argvOf({"prog", "--chip", "TFF"});
    ASSERT_TRUE(cli.parse(static_cast<int>(argv.size()), argv.data()));
    EXPECT_EQ(cli.value("chip"), "TFF");
}

TEST(Cli, EqualsValue)
{
    CliParser cli("prog", "test");
    cli.addOption("chip", "TTT", "chip corner");
    const auto argv = argvOf({"prog", "--chip=TSS"});
    ASSERT_TRUE(cli.parse(static_cast<int>(argv.size()), argv.data()));
    EXPECT_EQ(cli.value("chip"), "TSS");
}

TEST(Cli, Flags)
{
    CliParser cli("prog", "test");
    cli.addFlag("verbose", "chatty");
    const auto argv = argvOf({"prog", "--verbose"});
    ASSERT_TRUE(cli.parse(static_cast<int>(argv.size()), argv.data()));
    EXPECT_TRUE(cli.flag("verbose"));
}

TEST(Cli, FlagAbsent)
{
    CliParser cli("prog", "test");
    cli.addFlag("verbose", "chatty");
    const auto argv = argvOf({"prog"});
    ASSERT_TRUE(cli.parse(static_cast<int>(argv.size()), argv.data()));
    EXPECT_FALSE(cli.flag("verbose"));
}

TEST(Cli, UnknownOptionFails)
{
    CliParser cli("prog", "test");
    const auto argv = argvOf({"prog", "--nope"});
    EXPECT_FALSE(
        cli.parse(static_cast<int>(argv.size()), argv.data()));
}

TEST(Cli, MissingValueFails)
{
    CliParser cli("prog", "test");
    cli.addOption("chip", "TTT", "chip corner");
    const auto argv = argvOf({"prog", "--chip"});
    EXPECT_FALSE(
        cli.parse(static_cast<int>(argv.size()), argv.data()));
}

TEST(Cli, HelpReturnsFalse)
{
    CliParser cli("prog", "test");
    const auto argv = argvOf({"prog", "--help"});
    EXPECT_FALSE(
        cli.parse(static_cast<int>(argv.size()), argv.data()));
}

TEST(Cli, IntAndDoubleValues)
{
    CliParser cli("prog", "test");
    cli.addOption("runs", "10", "run count");
    cli.addOption("frac", "0.2", "fraction");
    const auto argv = argvOf({"prog", "--runs", "25"});
    ASSERT_TRUE(cli.parse(static_cast<int>(argv.size()), argv.data()));
    EXPECT_EQ(cli.intValue("runs"), 25);
    EXPECT_DOUBLE_EQ(cli.doubleValue("frac"), 0.2);
}

TEST(Cli, Positional)
{
    CliParser cli("prog", "test");
    cli.addOption("chip", "TTT", "chip corner");
    const auto argv = argvOf({"prog", "bwaves", "--chip", "TFF",
                              "mcf"});
    ASSERT_TRUE(cli.parse(static_cast<int>(argv.size()), argv.data()));
    ASSERT_EQ(cli.positional().size(), 2u);
    EXPECT_EQ(cli.positional()[0], "bwaves");
    EXPECT_EQ(cli.positional()[1], "mcf");
}

TEST(Cli, RepeatableCollectsEveryOccurrence)
{
    CliParser cli("prog", "test");
    cli.addRepeatable("chip", "fleet chip CORNER[:serial]");
    const auto argv = argvOf(
        {"prog", "--chip", "TTT", "--chip=TFF:2", "--chip", "TSS"});
    ASSERT_TRUE(cli.parse(static_cast<int>(argv.size()), argv.data()));
    const auto &chips = cli.values("chip");
    ASSERT_EQ(chips.size(), 3u);
    EXPECT_EQ(chips[0], "TTT");
    EXPECT_EQ(chips[1], "TFF:2");
    EXPECT_EQ(chips[2], "TSS");
}

TEST(Cli, RepeatableUnsetIsEmpty)
{
    CliParser cli("prog", "test");
    cli.addRepeatable("chip", "fleet chip");
    const auto argv = argvOf({"prog"});
    ASSERT_TRUE(cli.parse(static_cast<int>(argv.size()), argv.data()));
    EXPECT_TRUE(cli.values("chip").empty());
}

TEST(Cli, RepeatableMissingValueFails)
{
    CliParser cli("prog", "test");
    cli.addRepeatable("chip", "fleet chip");
    const auto argv = argvOf({"prog", "--chip"});
    EXPECT_FALSE(
        cli.parse(static_cast<int>(argv.size()), argv.data()));
}

TEST(CliDeath, ValueOnRepeatablePanics)
{
    CliParser cli("prog", "test");
    cli.addRepeatable("chip", "fleet chip");
    EXPECT_DEATH((void)cli.value("chip"), "repeatable");
}

TEST(CliDeath, ValuesOnScalarPanics)
{
    CliParser cli("prog", "test");
    cli.addOption("chip", "TTT", "chip corner");
    EXPECT_DEATH((void)cli.values("chip"), "not repeatable");
}

TEST(Cli, HelpMarksRepeatable)
{
    CliParser cli("prog", "test");
    cli.addRepeatable("chip", "fleet chip");
    std::ostringstream os;
    cli.printHelp(os);
    EXPECT_NE(os.str().find("(repeatable)"), std::string::npos);
}

TEST(Cli, HelpTextListsOptions)
{
    CliParser cli("prog", "does things");
    cli.addOption("chip", "TTT", "chip corner");
    cli.addFlag("verbose", "chatty");
    std::ostringstream os;
    cli.printHelp(os);
    const std::string help = os.str();
    EXPECT_NE(help.find("--chip"), std::string::npos);
    EXPECT_NE(help.find("--verbose"), std::string::npos);
    EXPECT_NE(help.find("TTT"), std::string::npos);
}

} // namespace
} // namespace vmargin::util
