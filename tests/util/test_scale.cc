/**
 * @file
 * Unit tests for the saturating scaled-count helper the simulation
 * kernel uses for sampled-counter upscaling and PMU derivation.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>

#include "util/scale.hh"

namespace vmargin::util
{
namespace
{

TEST(ScaleCount, MatchesLlroundForInRangeProducts)
{
    const uint64_t counts[] = {0, 1, 2, 7, 127, 4096, 999999,
                               1234567890123ULL};
    const double factors[] = {0.0,  0.0004, 0.3,  0.5,  0.92,
                              1.0,  1.15,   2.0,  13.7, 1e6};
    for (const uint64_t n : counts)
        for (const double f : factors) {
            const double scaled = static_cast<double>(n) * f;
            ASSERT_LT(scaled, 9.2e18); // all in llround's range
            EXPECT_EQ(scaleCount(n, f),
                      static_cast<uint64_t>(std::llround(scaled)))
                << n << " * " << f;
        }
}

TEST(ScaleCount, RoundsHalfAwayFromZero)
{
    EXPECT_EQ(scaleCount(5, 0.5), 3u);  // 2.5 -> 3
    EXPECT_EQ(scaleCount(5, 0.3), 2u);  // 1.5 -> 2
    EXPECT_EQ(scaleCount(1, 0.49), 0u); // 0.49 -> 0
    EXPECT_EQ(scaleCount(1, 0.51), 1u);
}

TEST(ScaleCount, SaturatesAtUint64MaxInsteadOfOverflowing)
{
    // llround would be undefined for every one of these.
    EXPECT_EQ(scaleCount(UINT64_MAX, 2.0), UINT64_MAX);
    EXPECT_EQ(scaleCount(1ULL << 62, 8.0), UINT64_MAX);
    EXPECT_EQ(scaleCount(1ULL << 63, 1e300), UINT64_MAX);
}

TEST(ScaleCount, ExactInTheCastOnlyBand)
{
    // Products in [2^63, 2^64) exceed llround's range but still fit
    // uint64_t: the helper must return the exact integer value of
    // the double product, not a clamp.
    const double product = static_cast<double>(1ULL << 62) * 2.5;
    EXPECT_EQ(scaleCount(1ULL << 62, 2.5),
              static_cast<uint64_t>(product));
    EXPECT_GT(scaleCount(1ULL << 62, 2.5), 1ULL << 63);
    EXPECT_LT(scaleCount(1ULL << 62, 2.5), UINT64_MAX);
}

TEST(ScaleCount, NegativeAndNanProductsClampToZero)
{
    EXPECT_EQ(scaleCount(100, -0.5), 0u);
    EXPECT_EQ(scaleCount(100, -1e300), 0u);
    EXPECT_EQ(scaleCount(100, std::nan("")), 0u);
}

} // namespace
} // namespace vmargin::util
