/**
 * @file
 * Unit tests for streaming statistics accumulators.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "util/accum.hh"
#include "util/rng.hh"

namespace vmargin::util
{
namespace
{

TEST(Accumulator, Empty)
{
    Accumulator acc;
    EXPECT_EQ(acc.count(), 0u);
    EXPECT_EQ(acc.mean(), 0.0);
    EXPECT_EQ(acc.variance(), 0.0);
}

TEST(Accumulator, SingleSample)
{
    Accumulator acc;
    acc.add(5.0);
    EXPECT_EQ(acc.count(), 1u);
    EXPECT_EQ(acc.mean(), 5.0);
    EXPECT_EQ(acc.variance(), 0.0);
    EXPECT_EQ(acc.min(), 5.0);
    EXPECT_EQ(acc.max(), 5.0);
}

TEST(Accumulator, KnownMoments)
{
    Accumulator acc;
    for (double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0})
        acc.add(v);
    EXPECT_DOUBLE_EQ(acc.mean(), 5.0);
    EXPECT_DOUBLE_EQ(acc.variance(), 4.0);
    EXPECT_DOUBLE_EQ(acc.stddev(), 2.0);
    EXPECT_EQ(acc.min(), 2.0);
    EXPECT_EQ(acc.max(), 9.0);
    EXPECT_DOUBLE_EQ(acc.sum(), 40.0);
}

TEST(Accumulator, SampleVariance)
{
    Accumulator acc;
    for (double v : {1.0, 2.0, 3.0})
        acc.add(v);
    EXPECT_DOUBLE_EQ(acc.sampleVariance(), 1.0);
}

TEST(Accumulator, MergeEqualsSequential)
{
    Accumulator a, b, all;
    Rng rng(5);
    for (int i = 0; i < 1000; ++i) {
        const double v = rng.gaussian(3.0, 2.0);
        (i % 2 ? a : b).add(v);
        all.add(v);
    }
    a.merge(b);
    EXPECT_EQ(a.count(), all.count());
    EXPECT_NEAR(a.mean(), all.mean(), 1e-9);
    EXPECT_NEAR(a.variance(), all.variance(), 1e-9);
    EXPECT_EQ(a.min(), all.min());
    EXPECT_EQ(a.max(), all.max());
}

TEST(Accumulator, MergeWithEmpty)
{
    Accumulator a, empty;
    a.add(1.0);
    a.add(3.0);
    a.merge(empty);
    EXPECT_EQ(a.count(), 2u);
    EXPECT_DOUBLE_EQ(a.mean(), 2.0);

    Accumulator c;
    c.merge(a);
    EXPECT_EQ(c.count(), 2u);
    EXPECT_DOUBLE_EQ(c.mean(), 2.0);
}

TEST(Accumulator, Reset)
{
    Accumulator acc;
    acc.add(1.0);
    acc.reset();
    EXPECT_EQ(acc.count(), 0u);
    EXPECT_EQ(acc.mean(), 0.0);
}

TEST(Histogram, BinsAndEdges)
{
    Histogram hist(0.0, 10.0, 5);
    EXPECT_EQ(hist.bins(), 5u);
    EXPECT_DOUBLE_EQ(hist.binLow(0), 0.0);
    EXPECT_DOUBLE_EQ(hist.binLow(4), 8.0);
}

TEST(Histogram, Counting)
{
    Histogram hist(0.0, 10.0, 5);
    hist.add(0.5);  // bin 0
    hist.add(1.99); // bin 0
    hist.add(2.0);  // bin 1
    hist.add(9.99); // bin 4
    EXPECT_EQ(hist.binCount(0), 2u);
    EXPECT_EQ(hist.binCount(1), 1u);
    EXPECT_EQ(hist.binCount(4), 1u);
    EXPECT_EQ(hist.total(), 4u);
}

TEST(Histogram, UnderOverflow)
{
    Histogram hist(0.0, 10.0, 5);
    hist.add(-1.0);
    hist.add(10.0); // hi edge is exclusive
    hist.add(100.0);
    EXPECT_EQ(hist.underflow(), 1u);
    EXPECT_EQ(hist.overflow(), 2u);
    EXPECT_EQ(hist.total(), 3u);
}

} // namespace
} // namespace vmargin::util
