/**
 * @file
 * Unit and property tests for the core execution engine: outcome
 * semantics, determinism, PMU consistency and the voltage-dependent
 * fault behaviour.
 */

#include <gtest/gtest.h>

#include "sim/cache_hierarchy.hh"
#include "sim/core.hh"
#include "workloads/spec.hh"

namespace vmargin::sim
{
namespace
{

class CoreRunTest : public ::testing::Test
{
  protected:
    CoreRunTest() : caches_(params_), core_(0, params_, &caches_)
    {
    }

    RunResult
    runAt(MilliVolt v, const OnsetSet &onsets, Seed seed = 1,
          const std::string &workload = "bwaves/ref")
    {
        ExecutionConfig config;
        config.voltage = v;
        config.seed = seed;
        config.maxEpochs = 20;
        return core_.run(wl::findWorkload(workload), onsets, config);
    }

    /** Onsets far below any tested voltage: nothing ever fails. */
    static OnsetSet
    safeOnsets()
    {
        OnsetSet o;
        o.sdc = 600;
        o.ce = 595;
        o.ue = 590;
        o.ac = 590;
        o.sc = 580;
        return o;
    }

    XGene2Params params_;
    CacheHierarchy caches_;
    Core core_;
};

TEST_F(CoreRunTest, NominalRunIsClean)
{
    const RunResult r = runAt(980, safeOnsets());
    EXPECT_TRUE(r.completed);
    EXPECT_TRUE(r.outputMatches);
    EXPECT_FALSE(r.systemCrashed);
    EXPECT_FALSE(r.applicationCrashed);
    EXPECT_EQ(r.exitCode, 0);
    EXPECT_EQ(r.sdcEvents, 0u);
    EXPECT_EQ(r.correctedErrors, 0u);
    EXPECT_FALSE(r.abnormal());
    EXPECT_EQ(r.epochsExecuted, 20u);
}

TEST_F(CoreRunTest, DeterministicInSeed)
{
    OnsetSet onsets = safeOnsets();
    onsets.sdc = 900;
    onsets.ce = 895;
    // Determinism holds for identical initial state; the cache
    // warm-up from run a would otherwise leak into run b.
    const RunResult a = runAt(890, onsets, 42);
    caches_.invalidateAll();
    const RunResult b = runAt(890, onsets, 42);
    EXPECT_EQ(a.sdcEvents, b.sdcEvents);
    EXPECT_EQ(a.correctedErrors, b.correctedErrors);
    EXPECT_EQ(a.epochsExecuted, b.epochsExecuted);
    EXPECT_EQ(a.counters, b.counters);
}

TEST_F(CoreRunTest, SeedsProduceDifferentFaults)
{
    OnsetSet onsets = safeOnsets();
    onsets.sdc = 900;
    const RunResult a = runAt(898, onsets, 1);
    bool any_diff = false;
    for (Seed s = 2; s < 12 && !any_diff; ++s)
        any_diff = runAt(898, onsets, s).sdcEvents != a.sdcEvents;
    EXPECT_TRUE(any_diff);
}

TEST_F(CoreRunTest, DeepBelowSdcOnsetCorruptsOutput)
{
    OnsetSet onsets = safeOnsets();
    onsets.sdc = 920;
    const RunResult r = runAt(905, onsets);
    EXPECT_TRUE(r.completed);
    EXPECT_GT(r.sdcEvents, 0u);
    EXPECT_FALSE(r.outputMatches);
    EXPECT_TRUE(r.abnormal());
}

TEST_F(CoreRunTest, BelowCeOnsetReportsEdacRecords)
{
    OnsetSet onsets = safeOnsets();
    onsets.ce = 920;
    const RunResult r = runAt(905, onsets);
    EXPECT_GT(r.correctedErrors, 0u);
    EXPECT_FALSE(r.errors.empty());
    uint64_t total = 0;
    for (const auto &record : r.errors) {
        EXPECT_EQ(record.core, 0);
        if (record.kind == ErrorKind::Corrected)
            total += record.count;
    }
    EXPECT_EQ(total, r.correctedErrors);
}

TEST_F(CoreRunTest, BelowScOnsetCrashesAndTruncates)
{
    OnsetSet onsets;
    onsets.sdc = 940;
    onsets.ce = 935;
    onsets.ue = 930;
    onsets.ac = 930;
    onsets.sc = 925;
    const RunResult r = runAt(905, onsets);
    EXPECT_TRUE(r.systemCrashed);
    EXPECT_FALSE(r.completed);
    EXPECT_LT(r.epochsExecuted, 20u);
    // A hung machine loses the run's logs (Figure 5's clean 16.0).
    EXPECT_EQ(r.sdcEvents, 0u);
    EXPECT_EQ(r.correctedErrors, 0u);
    EXPECT_TRUE(r.errors.empty());
}

TEST_F(CoreRunTest, ApplicationCrashHasNonZeroExit)
{
    OnsetSet onsets = safeOnsets();
    onsets.ac = 930; // only AC reachable
    const RunResult r = runAt(905, onsets, 3);
    ASSERT_TRUE(r.applicationCrashed);
    EXPECT_NE(r.exitCode, 0);
    EXPECT_FALSE(r.completed);
    EXPECT_FALSE(r.systemCrashed);
}

TEST_F(CoreRunTest, CountersConsistent)
{
    const RunResult r = runAt(980, safeOnsets());
    const auto at = [&](PmuEvent e) {
        return r.counters[static_cast<size_t>(e)];
    };
    EXPECT_GT(at(PmuEvent::INST_RETIRED), 0u);
    EXPECT_GT(at(PmuEvent::CPU_CYCLES), at(PmuEvent::INST_RETIRED) / 4)
        << "IPC cannot exceed the 4-wide issue width";
    EXPECT_EQ(at(PmuEvent::MEM_ACCESS),
              at(PmuEvent::MEM_ACCESS_RD) +
                  at(PmuEvent::MEM_ACCESS_WR));
    EXPECT_LE(at(PmuEvent::BR_MIS_PRED), at(PmuEvent::BR_RETIRED));
    EXPECT_LE(at(PmuEvent::DISPATCH_STALL_CYCLES),
              at(PmuEvent::CPU_CYCLES));
    EXPECT_LE(at(PmuEvent::L1D_CACHE_REFILL),
              at(PmuEvent::L1D_CACHE));
    EXPECT_LE(at(PmuEvent::L2D_CACHE_REFILL),
              at(PmuEvent::L2D_CACHE) + 1);
    EXPECT_EQ(at(PmuEvent::MEMORY_ERROR), 0u);
}

TEST_F(CoreRunTest, SpatialLocalityDrivesL1HitRatio)
{
    // Sequential streamers (lbm, spatial 0.97) mostly stay inside
    // the current cache line; pointer chasers (mcf, spatial 0.18)
    // touch a new line almost every access. The functional cache
    // model must reproduce that ordering.
    auto l1_miss_ratio = [&](const std::string &name, Seed seed) {
        caches_.invalidateAll();
        const RunResult r = runAt(980, safeOnsets(), seed, name);
        const double refills = static_cast<double>(
            r.counters[static_cast<size_t>(
                PmuEvent::L1D_CACHE_REFILL)]);
        const double accesses = static_cast<double>(
            r.counters[static_cast<size_t>(PmuEvent::L1D_CACHE)]);
        return refills / accesses;
    };
    EXPECT_LT(l1_miss_ratio("lbm/ref", 5),
              l1_miss_ratio("mcf/ref", 6) * 0.5);
}

TEST_F(CoreRunTest, RuntimeScalesWithFrequency)
{
    ExecutionConfig slow;
    slow.voltage = 980;
    slow.frequency = 1200;
    slow.speedClass = SpeedClass::Half;
    slow.seed = 9;
    slow.maxEpochs = 10;
    ExecutionConfig fast = slow;
    fast.frequency = 2400;
    fast.speedClass = SpeedClass::Full;
    const auto w = wl::findWorkload("gromacs/ref");
    const RunResult rs = core_.run(w, safeOnsets(), slow);
    const RunResult rf = core_.run(w, safeOnsets(), fast);
    EXPECT_NEAR(rs.simulatedSeconds / rf.simulatedSeconds, 2.0,
                0.02);
}

TEST_F(CoreRunTest, ActivityFactorInRange)
{
    for (const char *name : {"mcf/ref", "namd/ref", "gcc/166"}) {
        const RunResult r = runAt(980, safeOnsets(), 11, name);
        EXPECT_GT(r.activityFactor, 0.2) << name;
        EXPECT_LE(r.activityFactor, 1.0) << name;
    }
    // Compute-dense code toggles more than a stalled one.
    const RunResult namd = runAt(980, safeOnsets(), 12, "namd/ref");
    const RunResult mcf = runAt(980, safeOnsets(), 12, "mcf/ref");
    EXPECT_GT(namd.activityFactor, mcf.activityFactor);
}

TEST_F(CoreRunTest, DroopEatsTimingMargin)
{
    // With a droopy PDN, activity swings push the effective failure
    // thresholds up: a voltage that is safe on a stiff PDN starts
    // misbehaving.
    OnsetSet onsets = safeOnsets();
    onsets.sdc = 893;
    auto abnormal_runs = [&](double droop_sensitivity) {
        int abnormal = 0;
        for (Seed s = 0; s < 20; ++s) {
            ExecutionConfig config;
            config.voltage = 905;
            config.seed = 700 + s;
            config.maxEpochs = 10;
            config.droopSensitivityMv = droop_sensitivity;
            abnormal += core_.run(wl::findWorkload("bwaves/ref"),
                                  onsets, config)
                            .abnormal();
        }
        return abnormal;
    };
    EXPECT_EQ(abnormal_runs(0.0), 0);
    EXPECT_GT(abnormal_runs(400.0), 5);
}

TEST_F(CoreRunTest, HeatEatsTimingMargin)
{
    // The same voltage that is safe at the 43 C setpoint misbehaves
    // on a hot package (the paper pins 43 C for exactly this
    // reason). Onset 893 + ~0.45 mV/C * 37 C = ~910 mV effective.
    OnsetSet onsets = safeOnsets();
    onsets.sdc = 893;
    auto abnormal_runs = [&](Celsius temperature) {
        int abnormal = 0;
        for (Seed s = 0; s < 20; ++s) {
            ExecutionConfig config;
            config.voltage = 905;
            config.seed = 500 + s;
            config.maxEpochs = 10;
            config.temperature = temperature;
            abnormal += core_.run(wl::findWorkload("bwaves/ref"),
                                  onsets, config)
                            .abnormal();
        }
        return abnormal;
    };
    EXPECT_EQ(abnormal_runs(43.0), 0);
    EXPECT_GT(abnormal_runs(80.0), 10);
}

/** Property: the probability of abnormal behaviour is monotone in
 *  undervolt depth (sampled over many seeds). */
class VoltageMonotonicityTest
    : public ::testing::TestWithParam<const char *>
{
};

TEST_P(VoltageMonotonicityTest, AbnormalRateGrowsAsVoltageDrops)
{
    XGene2Params params;
    CacheHierarchy caches(params);
    Core core(0, params, &caches);
    const auto workload = wl::findWorkload(GetParam());
    OnsetSet onsets;
    onsets.sdc = 900;
    onsets.ce = 896;
    onsets.ue = 892;
    onsets.ac = 888;
    onsets.sc = 880;

    auto abnormal_rate = [&](MilliVolt v) {
        int abnormal = 0;
        for (Seed s = 0; s < 20; ++s) {
            ExecutionConfig config;
            config.voltage = v;
            config.seed = 1000 + s;
            config.maxEpochs = 10;
            abnormal += core.run(workload, onsets, config).abnormal();
        }
        return abnormal;
    };

    const int high = abnormal_rate(915); // ~5 sigma above onset
    const int mid = abnormal_rate(897);  // just below onset
    const int low = abnormal_rate(875);  // below the crash onset
    EXPECT_EQ(high, 0);
    EXPECT_GT(mid, 0);
    EXPECT_GE(low, mid);
    EXPECT_EQ(low, 20) << "below the crash point every run fails";
}

INSTANTIATE_TEST_SUITE_P(Workloads, VoltageMonotonicityTest,
                         ::testing::Values("bwaves/ref", "mcf/ref",
                                           "namd/ref", "gcc/166"));

} // namespace
} // namespace vmargin::sim
