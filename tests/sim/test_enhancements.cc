/**
 * @file
 * Unit tests for the section 6 design-enhancement variants of the
 * margin model.
 */

#include <gtest/gtest.h>

#include "sim/margin_model.hh"
#include "sim/platform.hh"
#include "workloads/selftest.hh"
#include "workloads/spec.hh"

namespace vmargin::sim
{
namespace
{

class EnhancementsTest : public ::testing::Test
{
  protected:
    EnhancementsTest() : variation_(params_, ChipCorner::TTT, 1)
    {
    }

    OnsetSet
    onsetsWith(const DesignEnhancements &enhancements,
               const std::string &workload = "bwaves/ref",
               CoreId core = 0)
    {
        const MarginModel model(params_, variation_, enhancements);
        return model.onsets(core, wl::findWorkload(workload),
                            SpeedClass::Full);
    }

    XGene2Params params_;
    ProcessVariation variation_;
};

TEST_F(EnhancementsTest, DefaultIsNoEnhancement)
{
    const DesignEnhancements none;
    EXPECT_FALSE(none.any());
    const auto baseline = onsetsWith({});
    const MarginModel plain(params_, variation_);
    const auto direct = plain.onsets(
        0, wl::findWorkload("bwaves/ref"), SpeedClass::Full);
    EXPECT_EQ(baseline.sdc, direct.sdc);
    EXPECT_EQ(baseline.sc, direct.sc);
}

TEST_F(EnhancementsTest, StrongerEccFlipsTheOrdering)
{
    DesignEnhancements ecc;
    ecc.strongerEcc = true;
    EXPECT_TRUE(ecc.any());
    const auto baseline = onsetsWith({});
    const auto enhanced = onsetsWith(ecc);

    // The defining property: corrected errors now come FIRST
    // (Itanium-style), above the reduced SDC onset.
    EXPECT_GT(enhanced.ce, enhanced.sdc);
    EXPECT_EQ(enhanced.highest(), enhanced.ce);
    // And the SDC onset itself moved down (errors get corrected).
    EXPECT_LT(enhanced.sdc, baseline.sdc);
}

TEST_F(EnhancementsTest, StrongerEccHoldsForEveryWorkloadAndCore)
{
    DesignEnhancements ecc;
    ecc.strongerEcc = true;
    const MarginModel model(params_, variation_, ecc);
    for (const auto &w : wl::headlineSuite()) {
        for (CoreId c = 0; c < 8; ++c) {
            const auto onsets =
                model.onsets(c, w, SpeedClass::Full);
            EXPECT_GT(onsets.ce, onsets.sdc) << w.id();
        }
    }
}

TEST_F(EnhancementsTest, AdaptiveClockingShiftsTimingOnsetsDown)
{
    DesignEnhancements adaptive;
    adaptive.adaptiveClocking = true;
    adaptive.adaptiveClockingGainMv = 20;
    const auto baseline = onsetsWith({});
    const auto enhanced = onsetsWith(adaptive);
    EXPECT_EQ(enhanced.sdc, baseline.sdc - 20);
    EXPECT_EQ(enhanced.ce, baseline.ce - 20);
    EXPECT_EQ(enhanced.ac, baseline.ac - 20);
    EXPECT_EQ(enhanced.sc, baseline.sc - 20);
}

TEST_F(EnhancementsTest, AdaptiveClockingDoesNotMoveSramRetention)
{
    // Cache self-tests end at the SRAM hard limit, which a clock
    // stretcher cannot help.
    DesignEnhancements adaptive;
    adaptive.adaptiveClocking = true;
    const MarginModel plain(params_, variation_);
    const MarginModel stretched(params_, variation_, adaptive);
    const auto base = plain.onsets(
        0, wl::cacheSelfTest(wl::CacheLevel::L2), SpeedClass::Full);
    const auto enh = stretched.onsets(
        0, wl::cacheSelfTest(wl::CacheLevel::L2), SpeedClass::Full);
    EXPECT_EQ(enh.sc, base.sc);
    EXPECT_LT(enh.sdc, base.sdc);
}

TEST_F(EnhancementsTest, CombinedVariantsCompose)
{
    DesignEnhancements both;
    both.strongerEcc = true;
    both.adaptiveClocking = true;
    const auto enhanced = onsetsWith(both);
    const auto baseline = onsetsWith({});
    EXPECT_GT(enhanced.ce, enhanced.sdc);
    EXPECT_LT(enhanced.sdc,
              baseline.sdc - both.adaptiveClockingGainMv);
}

TEST_F(EnhancementsTest, HalfSpeedUnaffected)
{
    DesignEnhancements both;
    both.strongerEcc = true;
    both.adaptiveClocking = true;
    const MarginModel plain(params_, variation_);
    const MarginModel enhanced(params_, variation_, both);
    const auto w = wl::findWorkload("bwaves/ref");
    EXPECT_EQ(plain.onsets(0, w, SpeedClass::Half).sc,
              enhanced.onsets(0, w, SpeedClass::Half).sc);
}

TEST_F(EnhancementsTest, PlumbedThroughChipAndPlatform)
{
    DesignEnhancements ecc;
    ecc.strongerEcc = true;
    Platform platform(params_, ChipCorner::TTT, 1, ecc);
    const auto onsets = platform.chip().margins().onsets(
        0, wl::findWorkload("bwaves/ref"), SpeedClass::Full);
    EXPECT_GT(onsets.ce, onsets.sdc)
        << "enhancements must reach the chip's margin model";
}

} // namespace
} // namespace vmargin::sim
