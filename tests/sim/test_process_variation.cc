/**
 * @file
 * Unit tests for the static process-variation model (calibration
 * invariants of DESIGN.md section 4).
 */

#include <gtest/gtest.h>

#include "sim/process_variation.hh"

namespace vmargin::sim
{
namespace
{

ProcessVariation
chipOf(ChipCorner corner, uint32_t serial = 1)
{
    return ProcessVariation(XGene2Params{}, corner, serial);
}

TEST(Variation, DeterministicInSerial)
{
    const auto a = chipOf(ChipCorner::TTT, 3);
    const auto b = chipOf(ChipCorner::TTT, 3);
    for (CoreId c = 0; c < 8; ++c) {
        EXPECT_EQ(a.core(c).timingBaseMv, b.core(c).timingBaseMv);
        EXPECT_EQ(a.core(c).sramHardMv, b.core(c).sramHardMv);
        EXPECT_DOUBLE_EQ(a.core(c).leakageFactor,
                         b.core(c).leakageFactor);
    }
}

TEST(Variation, SerialsDiffer)
{
    const auto a = chipOf(ChipCorner::TTT, 1);
    const auto b = chipOf(ChipCorner::TTT, 2);
    bool any_diff = false;
    for (CoreId c = 0; c < 8; ++c)
        any_diff =
            any_diff ||
            a.core(c).timingBaseMv != b.core(c).timingBaseMv;
    EXPECT_TRUE(any_diff);
}

TEST(Variation, Pmd2IsMostRobust)
{
    // Figure 4: PMD 2 (cores 4, 5) is the most robust on every chip;
    // PMD 0 (cores 0, 1) is the most sensitive.
    for (ChipCorner corner : kAllCorners) {
        for (uint32_t serial = 1; serial <= 3; ++serial) {
            const auto chip = chipOf(corner, serial);
            const auto pmd_base = [&](PmdId p) {
                return (chip.core(2 * p).timingBaseMv +
                        chip.core(2 * p + 1).timingBaseMv) /
                       2;
            };
            EXPECT_LT(pmd_base(2), pmd_base(0));
            EXPECT_LT(pmd_base(2), pmd_base(1));
            EXPECT_LT(pmd_base(2), pmd_base(3));
            EXPECT_GT(pmd_base(0), pmd_base(1));
            EXPECT_GT(pmd_base(0), pmd_base(3));
        }
    }
}

TEST(Variation, CornerOrdering)
{
    // TFF undervolts deeper than TTT; TSS is the weakest (paper
    // section 3.3).
    const auto ttt = chipOf(ChipCorner::TTT);
    const auto tff = chipOf(ChipCorner::TFF);
    const auto tss = chipOf(ChipCorner::TSS);
    const auto avg = [](const ProcessVariation &v) {
        double sum = 0;
        for (CoreId c = 0; c < 8; ++c)
            sum += v.core(c).timingBaseMv;
        return sum / 8.0;
    };
    EXPECT_LT(avg(tff), avg(ttt));
    EXPECT_GT(avg(tss), avg(ttt));
}

TEST(Variation, LeakageOrdering)
{
    EXPECT_GT(chipOf(ChipCorner::TFF).chipLeakageFactor(),
              chipOf(ChipCorner::TTT).chipLeakageFactor());
    EXPECT_LT(chipOf(ChipCorner::TSS).chipLeakageFactor(),
              chipOf(ChipCorner::TTT).chipLeakageFactor());
}

TEST(Variation, CoreToCoreSpreadWithinPaperBound)
{
    // Up to ~3.6% of nominal (35 mV) between the most robust and
    // the most sensitive core.
    for (ChipCorner corner : kAllCorners) {
        const auto chip = chipOf(corner);
        MilliVolt lo = 10000, hi = 0;
        for (CoreId c = 0; c < 8; ++c) {
            lo = std::min(lo, chip.core(c).timingBaseMv);
            hi = std::max(hi, chip.core(c).timingBaseMv);
        }
        EXPECT_GT(hi - lo, 15) << "variation suspiciously small";
        EXPECT_LE(hi - lo, 40) << "variation beyond the paper's 3.6%";
    }
}

TEST(Variation, SramHardWellBelowTiming)
{
    // Section 3.4: cache arrays survive far below the timing-failure
    // region.
    const auto chip = chipOf(ChipCorner::TTT);
    for (CoreId c = 0; c < 8; ++c)
        EXPECT_LE(chip.core(c).sramHardMv,
                  chip.core(c).timingBaseMv - 30);
}

TEST(Variation, HalfSpeedCrashNear753)
{
    for (ChipCorner corner : kAllCorners) {
        const auto chip = chipOf(corner);
        EXPECT_GE(chip.halfSpeedCrashMv(), 750);
        EXPECT_LE(chip.halfSpeedCrashMv(), 756);
    }
}

TEST(Variation, RobustAndSensitiveCoreLookup)
{
    const auto chip = chipOf(ChipCorner::TTT);
    const CoreId robust = chip.mostRobustCore();
    const CoreId sensitive = chip.mostSensitiveCore();
    EXPECT_TRUE(robust == 4 || robust == 5);
    EXPECT_TRUE(sensitive == 0 || sensitive == 1);
    for (CoreId c = 0; c < 8; ++c) {
        EXPECT_LE(chip.core(robust).timingBaseMv,
                  chip.core(c).timingBaseMv);
        EXPECT_GE(chip.core(sensitive).timingBaseMv,
                  chip.core(c).timingBaseMv);
    }
}

TEST(Variation, DeathOnBadCore)
{
    const auto chip = chipOf(ChipCorner::TTT);
    EXPECT_DEATH(chip.core(8), "out of range");
    EXPECT_DEATH(chip.core(-1), "out of range");
}

} // namespace
} // namespace vmargin::sim
