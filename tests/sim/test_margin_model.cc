/**
 * @file
 * Unit and property tests for the ground-truth margin model. These
 * encode the paper's key characterization findings as invariants.
 */

#include <gtest/gtest.h>

#include "sim/margin_model.hh"
#include "workloads/selftest.hh"
#include "workloads/spec.hh"

namespace vmargin::sim
{
namespace
{

class MarginModelTest : public ::testing::Test
{
  protected:
    MarginModelTest()
        : variation_(params_, ChipCorner::TTT, 1),
          model_(params_, variation_)
    {
    }

    XGene2Params params_;
    ProcessVariation variation_;
    MarginModel model_;
};

TEST_F(MarginModelTest, SdcIsAlwaysTheHighestOnset)
{
    // THE key finding of section 3.4: SDCs appear at higher voltage
    // than corrected errors alone on every benchmark — the opposite
    // of the Itanium studies.
    for (const auto &w : wl::fullSuite()) {
        for (CoreId c = 0; c < 8; ++c) {
            const auto onsets =
                model_.onsets(c, w, SpeedClass::Full);
            EXPECT_EQ(onsets.highest(), onsets.sdc) << w.id();
            EXPECT_LT(onsets.ce, onsets.sdc) << w.id();
            EXPECT_LT(onsets.ue, onsets.ce) << w.id();
            EXPECT_LT(onsets.sc, onsets.sdc) << w.id();
        }
    }
}

TEST_F(MarginModelTest, CrashClosesTheBand)
{
    for (const auto &w : wl::headlineSuite()) {
        const auto onsets = model_.onsets(0, w, SpeedClass::Full);
        EXPECT_EQ(onsets.sc, onsets.sdc - model_.unsafeWidth(w));
        EXPECT_LE(onsets.ac, onsets.sdc - 9);
        EXPECT_GE(onsets.ac, onsets.sc);
    }
}

TEST_F(MarginModelTest, HalfSpeedIsUniformAndBandless)
{
    // Paper: at 1.2 GHz every core and benchmark is safe down to
    // 760 mV and crashes directly below — no unsafe region.
    for (const auto &w : wl::headlineSuite()) {
        for (CoreId c = 0; c < 8; ++c) {
            const auto onsets =
                model_.onsets(c, w, SpeedClass::Half);
            EXPECT_EQ(onsets.sc, variation_.halfSpeedCrashMv());
            EXPECT_EQ(onsets.highest(), onsets.sc);
            EXPECT_LT(onsets.sdc, onsets.sc);
        }
    }
}

TEST_F(MarginModelTest, RobustCoreBandMatchesFigure3)
{
    // TTT at 2.4 GHz, most robust core: SDC onsets must put Vmin in
    // the paper's 860-885 mV band.
    const CoreId robust = variation_.mostRobustCore();
    MilliVolt lo = 10000, hi = 0;
    for (const auto &w : wl::headlineSuite()) {
        const auto onsets =
            model_.onsets(robust, w, SpeedClass::Full);
        lo = std::min(lo, onsets.sdc);
        hi = std::max(hi, onsets.sdc);
    }
    EXPECT_GE(lo, 845);
    EXPECT_LE(hi, 882);
    EXPECT_GE(hi - lo, 15) << "workload variation too small";
}

TEST_F(MarginModelTest, WorkloadOrderingIsCoreIndependent)
{
    // "Workload-to-workload variation remains the same across
    // chips/cores": onset deltas between two workloads must not
    // depend on the core.
    const auto a = wl::findWorkload("mcf/ref");
    const auto b = wl::findWorkload("namd/ref");
    const MilliVolt delta0 =
        model_.onsets(0, b, SpeedClass::Full).sdc -
        model_.onsets(0, a, SpeedClass::Full).sdc;
    for (CoreId c = 1; c < 8; ++c) {
        const MilliVolt delta =
            model_.onsets(c, b, SpeedClass::Full).sdc -
            model_.onsets(c, a, SpeedClass::Full).sdc;
        EXPECT_EQ(delta, delta0);
    }
}

TEST_F(MarginModelTest, StressIsBounded)
{
    for (const auto &w : wl::fullSuite()) {
        const double s = MarginModel::pipelineStress(w);
        EXPECT_GE(s, 0.0);
        EXPECT_LE(s, 1.0);
    }
}

TEST_F(MarginModelTest, ComputeBoundStressesMoreThanMemoryBound)
{
    const double mcf =
        MarginModel::pipelineStress(wl::findWorkload("mcf/ref"));
    const double namd =
        MarginModel::pipelineStress(wl::findWorkload("namd/ref"));
    const double gromacs = MarginModel::pipelineStress(
        wl::findWorkload("gromacs/ref"));
    EXPECT_LT(mcf, namd);
    EXPECT_LT(mcf, gromacs);
}

TEST_F(MarginModelTest, SelfTestsSitAtTheExtremes)
{
    // Section 3.4: ALU/FPU tests stress timing paths far beyond any
    // SPEC workload; cache tests barely stress them at all.
    double spec_lo = 1.0, spec_hi = 0.0;
    for (const auto &w : wl::fullSuite()) {
        spec_lo = std::min(spec_lo, MarginModel::pipelineStress(w));
        spec_hi = std::max(spec_hi, MarginModel::pipelineStress(w));
    }
    EXPECT_GT(MarginModel::pipelineStress(wl::aluSelfTest()),
              spec_hi);
    EXPECT_GT(MarginModel::pipelineStress(wl::fpuSelfTest()),
              spec_hi);
    EXPECT_LT(MarginModel::pipelineStress(
                  wl::cacheSelfTest(wl::CacheLevel::L1D)),
              spec_lo);
}

TEST_F(MarginModelTest, CacheTestsCrashFarBelowAluSdcOnset)
{
    // The measured justification for SDC-first behaviour: ALU/FPU
    // tests show SDCs at voltages where the cache tests still run;
    // the cache tests only die when the arrays give out, much lower.
    const auto alu =
        model_.onsets(0, wl::aluSelfTest(), SpeedClass::Full);
    const auto cache = model_.onsets(
        0, wl::cacheSelfTest(wl::CacheLevel::L2), SpeedClass::Full);
    EXPECT_GT(alu.sdc, cache.sc + 60);
    EXPECT_EQ(cache.sc, variation_.core(0).sramHardMv);
}

TEST_F(MarginModelTest, FpuHoldsTheLongestPaths)
{
    const auto alu =
        model_.onsets(0, wl::aluSelfTest(), SpeedClass::Full);
    const auto fpu =
        model_.onsets(0, wl::fpuSelfTest(), SpeedClass::Full);
    EXPECT_GT(fpu.sdc, alu.sdc);
}

TEST_F(MarginModelTest, UnsafeWidthShape)
{
    // Streaming FP codes (bwaves) degrade gradually; pointer-chasing
    // mcf collapses quickly (Figures 4/5).
    const MilliVolt bwaves =
        MarginModel::unsafeWidth(wl::findWorkload("bwaves/ref"));
    const MilliVolt mcf =
        MarginModel::unsafeWidth(wl::findWorkload("mcf/ref"));
    EXPECT_GT(bwaves, mcf + 8);
    for (const auto &w : wl::fullSuite()) {
        const MilliVolt width = MarginModel::unsafeWidth(w);
        EXPECT_GE(width, 8);
        EXPECT_LE(width, 45);
    }
}

/** Property sweep: onset ordering holds on every chip corner,
 *  serial and core for the whole suite. */
class MarginPropertyTest
    : public ::testing::TestWithParam<std::tuple<ChipCorner, int>>
{
};

TEST_P(MarginPropertyTest, OrderingInvariants)
{
    const auto [corner, serial] = GetParam();
    const XGene2Params params;
    const ProcessVariation variation(
        params, corner, static_cast<uint32_t>(serial));
    const MarginModel model(params, variation);
    for (const auto &w : wl::headlineSuite()) {
        for (CoreId c = 0; c < 8; ++c) {
            const auto full = model.onsets(c, w, SpeedClass::Full);
            const auto half = model.onsets(c, w, SpeedClass::Half);
            EXPECT_GT(full.sdc, full.ce);
            EXPECT_GT(full.ce, full.ue);
            EXPECT_GE(full.ac, full.sc);
            EXPECT_GT(full.sdc, full.sc);
            // Slowing the clock must never raise the failure point.
            EXPECT_LT(half.highest(), full.sc);
        }
    }
}

INSTANTIATE_TEST_SUITE_P(
    AllChips, MarginPropertyTest,
    ::testing::Combine(::testing::Values(ChipCorner::TTT,
                                         ChipCorner::TFF,
                                         ChipCorner::TSS),
                       ::testing::Values(1, 2, 7)));

} // namespace
} // namespace vmargin::sim
