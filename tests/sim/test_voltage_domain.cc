/**
 * @file
 * Unit tests for the regulated voltage domains.
 */

#include <gtest/gtest.h>

#include "sim/voltage_domain.hh"

namespace vmargin::sim
{
namespace
{

VoltageDomain
pmdDomain()
{
    return VoltageDomain("PMD", 980, 5, 500);
}

TEST(VoltageDomain, StartsAtNominal)
{
    const auto domain = pmdDomain();
    EXPECT_EQ(domain.voltage(), 980);
    EXPECT_EQ(domain.undervolt(), 0);
}

TEST(VoltageDomain, AcceptsAlignedSetpoints)
{
    auto domain = pmdDomain();
    EXPECT_TRUE(domain.set(905));
    EXPECT_EQ(domain.voltage(), 905);
    EXPECT_EQ(domain.undervolt(), 75);
}

TEST(VoltageDomain, RejectsOffGrid)
{
    auto domain = pmdDomain();
    EXPECT_FALSE(domain.set(903));
    EXPECT_EQ(domain.voltage(), 980) << "failed set must not move";
}

TEST(VoltageDomain, RejectsAboveNominal)
{
    auto domain = pmdDomain();
    EXPECT_FALSE(domain.set(985));
}

TEST(VoltageDomain, RejectsBelowFloor)
{
    auto domain = pmdDomain();
    EXPECT_FALSE(domain.set(495));
    EXPECT_TRUE(domain.set(500));
}

TEST(VoltageDomain, StepDownToFloor)
{
    VoltageDomain domain("test", 510, 5, 500);
    EXPECT_TRUE(domain.stepDown());
    EXPECT_TRUE(domain.stepDown());
    EXPECT_EQ(domain.voltage(), 500);
    EXPECT_FALSE(domain.stepDown());
    EXPECT_EQ(domain.voltage(), 500);
}

TEST(VoltageDomain, StepUpToNominal)
{
    auto domain = pmdDomain();
    domain.set(970);
    EXPECT_TRUE(domain.stepUp());
    EXPECT_TRUE(domain.stepUp());
    EXPECT_FALSE(domain.stepUp());
    EXPECT_EQ(domain.voltage(), 980);
}

TEST(VoltageDomain, Reset)
{
    auto domain = pmdDomain();
    domain.set(760);
    domain.reset();
    EXPECT_EQ(domain.voltage(), 980);
}

TEST(VoltageDomain, LegalPredicateMatchesSet)
{
    auto domain = pmdDomain();
    for (MilliVolt v : {980, 975, 760, 505, 500})
        EXPECT_TRUE(domain.legal(v)) << v;
    for (MilliVolt v : {981, 978, 495, 1000})
        EXPECT_FALSE(domain.legal(v)) << v;
}

TEST(VoltageDomain, SocDomainNominal)
{
    VoltageDomain domain("PCP/SoC", 950, 5, 500);
    EXPECT_EQ(domain.nominal(), 950);
    EXPECT_TRUE(domain.set(945));
    EXPECT_FALSE(domain.set(955));
}

TEST(VoltageDomain, DeathOnBadConstruction)
{
    EXPECT_DEATH(VoltageDomain("bad", 980, 0, 500), "step");
    EXPECT_DEATH(VoltageDomain("bad", 980, 5, 990), "floor");
    EXPECT_DEATH(VoltageDomain("bad", 980, 5, 502),
                 "whole steps");
}

} // namespace
} // namespace vmargin::sim
