/**
 * @file
 * Unit tests for the management-plane fault injection layer: the
 * deterministic FaultPlan itself and its wiring into the SLIMpro
 * interface and the external watchdog.
 */

#include <gtest/gtest.h>

#include <vector>

#include "sim/fault_injection.hh"
#include "sim/platform.hh"
#include "sim/slimpro.hh"
#include "sim/watchdog.hh"
#include "workloads/spec.hh"

namespace vmargin::sim
{
namespace
{

Platform
machine()
{
    return Platform(XGene2Params{}, ChipCorner::TTT, 1);
}

FaultPlanConfig
hostile(Seed seed)
{
    FaultPlanConfig config;
    config.i2cWriteFailure = 0.3;
    config.staleRead = 0.3;
    config.managementHang = 0.3;
    config.watchdogMiss = 0.3;
    config.seed = seed;
    return config;
}

TEST(FaultPlanConfig, BenignByDefault)
{
    FaultPlanConfig config;
    EXPECT_TRUE(config.benign());
    config.validate(); // no-op probabilities are valid

    config.staleRead = 0.01;
    EXPECT_FALSE(config.benign());
}

TEST(FaultPlanConfig, ProbabilityPerOp)
{
    FaultPlanConfig config;
    config.i2cWriteFailure = 0.1;
    config.staleRead = 0.2;
    config.managementHang = 0.3;
    config.watchdogMiss = 0.4;
    EXPECT_DOUBLE_EQ(config.probability(FaultOp::I2cWrite), 0.1);
    EXPECT_DOUBLE_EQ(config.probability(FaultOp::StaleRead), 0.2);
    EXPECT_DOUBLE_EQ(config.probability(FaultOp::ManagementHang),
                     0.3);
    EXPECT_DOUBLE_EQ(config.probability(FaultOp::WatchdogMiss), 0.4);
}

TEST(FaultPlanConfigDeath, RejectsOutOfRangeProbability)
{
    FaultPlanConfig config;
    config.i2cWriteFailure = 1.5;
    EXPECT_EXIT(config.validate(), ::testing::ExitedWithCode(1),
                "fault plan");
}

TEST(FaultPlan, SameSeedSameSequence)
{
    FaultPlan a(hostile(42));
    FaultPlan b(hostile(42));
    for (int i = 0; i < 200; ++i)
        EXPECT_EQ(a.shouldInject(FaultOp::I2cWrite),
                  b.shouldInject(FaultOp::I2cWrite));
}

TEST(FaultPlan, DifferentSeedsDiverge)
{
    FaultPlan a(hostile(42));
    FaultPlan b(hostile(43));
    int disagreements = 0;
    for (int i = 0; i < 200; ++i)
        disagreements += a.shouldInject(FaultOp::StaleRead) !=
                         b.shouldInject(FaultOp::StaleRead);
    EXPECT_GT(disagreements, 0);
}

TEST(FaultPlan, ScopeToRebasesStreams)
{
    // Drawing any number of times then rescoping must reproduce the
    // exact sequence of a fresh plan scoped the same way — the
    // property campaign replay determinism rests on.
    FaultPlan warm(hostile(7));
    for (int i = 0; i < 123; ++i)
        warm.shouldInject(FaultOp::I2cWrite);
    warm.scopeTo(0xABCDULL);

    FaultPlan fresh(hostile(7));
    fresh.scopeTo(0xABCDULL);

    for (int i = 0; i < 200; ++i)
        EXPECT_EQ(warm.shouldInject(FaultOp::I2cWrite),
                  fresh.shouldInject(FaultOp::I2cWrite));
}

TEST(FaultPlan, OpStreamsAreIndependent)
{
    // Interleaving draws on another op must not change a stream.
    FaultPlan solo(hostile(9));
    std::vector<bool> expected;
    for (int i = 0; i < 100; ++i)
        expected.push_back(solo.shouldInject(FaultOp::WatchdogMiss));

    FaultPlan mixed(hostile(9));
    for (int i = 0; i < 100; ++i) {
        mixed.shouldInject(FaultOp::I2cWrite);
        mixed.shouldInject(FaultOp::StaleRead);
        EXPECT_EQ(mixed.shouldInject(FaultOp::WatchdogMiss),
                  expected[static_cast<size_t>(i)]);
    }
}

TEST(FaultPlan, ZeroProbabilityNeverFires)
{
    FaultPlanConfig config;
    config.seed = 5;
    FaultPlan plan(config);
    for (int i = 0; i < 500; ++i)
        EXPECT_FALSE(plan.shouldInject(FaultOp::I2cWrite));
    EXPECT_EQ(plan.consulted(FaultOp::I2cWrite), 500u);
    EXPECT_EQ(plan.injected(FaultOp::I2cWrite), 0u);
}

TEST(FaultPlan, CertainProbabilityAlwaysFires)
{
    FaultPlanConfig config;
    config.i2cWriteFailure = 1.0;
    config.seed = 5;
    FaultPlan plan(config);
    for (int i = 0; i < 100; ++i)
        EXPECT_TRUE(plan.shouldInject(FaultOp::I2cWrite));
    EXPECT_EQ(plan.injected(FaultOp::I2cWrite), 100u);
}

TEST(FaultPlan, InjectionRateTracksProbability)
{
    FaultPlanConfig config;
    config.staleRead = 0.25;
    config.seed = 11;
    FaultPlan plan(config);
    const int draws = 4000;
    int fired = 0;
    for (int i = 0; i < draws; ++i)
        fired += plan.shouldInject(FaultOp::StaleRead) ? 1 : 0;
    EXPECT_NEAR(static_cast<double>(fired) / draws, 0.25, 0.03);
}

TEST(SlimProFaults, I2cWriteFailureNaksSetpoint)
{
    Platform p = machine();
    FaultPlanConfig config;
    config.i2cWriteFailure = 1.0;
    config.seed = 3;
    p.installFaultPlan(config);

    SlimPro mgmt(&p);
    EXPECT_FALSE(mgmt.setPmdVoltage(900)) << "every write NAKed";
    EXPECT_TRUE(p.responsive()) << "a NAK does not hang the machine";

    p.clearFaultPlan();
    EXPECT_TRUE(mgmt.setPmdVoltage(900));
}

TEST(SlimProFaults, ManagementHangWedgesMachine)
{
    Platform p = machine();
    FaultPlanConfig config;
    config.managementHang = 1.0;
    config.seed = 3;
    p.installFaultPlan(config);

    SlimPro mgmt(&p);
    EXPECT_FALSE(mgmt.setPmdVoltage(900));
    EXPECT_FALSE(p.responsive())
        << "a hung transaction silently takes the machine down";
}

TEST(SlimProFaults, StaleReadReturnsPreviousSample)
{
    Platform p = machine();
    SlimPro mgmt(&p);
    ASSERT_TRUE(mgmt.setPmdVoltage(900));
    const MilliVolt first = mgmt.pmdVoltage(); // no plan: live value
    EXPECT_EQ(first, 900);

    FaultPlanConfig config;
    config.staleRead = 1.0;
    config.seed = 3;
    p.installFaultPlan(config);

    // The domain moves but every read is stale, pinned at the last
    // value sampled before the plan went hostile.
    p.chip().pmdDomain().set(880);
    EXPECT_EQ(mgmt.pmdVoltage(), 900);
    p.chip().pmdDomain().set(860);
    EXPECT_EQ(mgmt.pmdVoltage(), 900);
}

TEST(WatchdogFaults, MissedCycleLeavesMachineDown)
{
    Platform p = machine();
    FaultPlanConfig config;
    config.watchdogMiss = 1.0;
    config.seed = 3;
    p.installFaultPlan(config);

    Watchdog dog(&p);
    p.hang();
    ASSERT_FALSE(p.responsive());

    EXPECT_FALSE(dog.ensureResponsive(WatchdogContext::Poll));
    EXPECT_FALSE(p.responsive()) << "the press was missed";
    EXPECT_EQ(dog.interventions(), 0u);
    EXPECT_EQ(dog.missedCycles(), 1u);
    ASSERT_EQ(dog.events().size(), 1u);
    EXPECT_EQ(dog.events()[0].outcome, WatchdogOutcome::MissedCycle);

    // Without the plan, the next poll succeeds.
    p.clearFaultPlan();
    EXPECT_TRUE(dog.ensureResponsive(WatchdogContext::Poll));
    EXPECT_TRUE(p.responsive());
    EXPECT_EQ(dog.interventions(), 1u);
}

TEST(WatchdogFaults, HealthyMachineConsumesNoMissDraws)
{
    Platform p = machine();
    p.installFaultPlan(hostile(3));
    Watchdog dog(&p);
    EXPECT_FALSE(dog.ensureResponsive(WatchdogContext::Poll));
    EXPECT_EQ(p.faultPlan()->consulted(FaultOp::WatchdogMiss), 0u)
        << "miss faults only apply to needed power cycles";
}

} // namespace
} // namespace vmargin::sim
