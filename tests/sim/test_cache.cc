/**
 * @file
 * Unit tests for the set-associative cache model.
 */

#include <gtest/gtest.h>

#include "sim/cache.hh"

namespace vmargin::sim
{
namespace
{

Cache
smallCache()
{
    // 4 KiB, 2-way, 64 B lines -> 32 sets.
    return Cache("test", 4, 2, 64, Protection::Ecc);
}

TEST(Cache, Geometry)
{
    const Cache cache = smallCache();
    EXPECT_EQ(cache.numSets(), 32u);
    EXPECT_EQ(cache.associativity(), 2);
    EXPECT_EQ(cache.lineBytes(), 64);
    EXPECT_EQ(cache.protection(), Protection::Ecc);
}

TEST(Cache, ColdMissThenHit)
{
    Cache cache = smallCache();
    EXPECT_FALSE(cache.access(0x1000, false).hit);
    EXPECT_TRUE(cache.access(0x1000, false).hit);
    EXPECT_TRUE(cache.access(0x1004, false).hit) << "same line";
    EXPECT_FALSE(cache.access(0x1040, false).hit) << "next line";
}

TEST(Cache, StatsAccounting)
{
    Cache cache = smallCache();
    cache.access(0x0, false);
    cache.access(0x0, true);
    cache.access(0x40, false);
    const CacheStats &s = cache.stats();
    EXPECT_EQ(s.accesses, 3u);
    EXPECT_EQ(s.reads, 2u);
    EXPECT_EQ(s.writes, 1u);
    EXPECT_EQ(s.hits, 1u);
    EXPECT_EQ(s.misses, 2u);
    EXPECT_EQ(s.fills, 2u);
    EXPECT_DOUBLE_EQ(s.missRatio(), 2.0 / 3.0);
}

TEST(Cache, LruEviction)
{
    Cache cache = smallCache(); // 2 ways
    // Three lines mapping to the same set (stride = sets * line).
    const uint64_t stride = 32 * 64;
    cache.access(0 * stride, false);          // A
    cache.access(1 * stride, false);          // B
    EXPECT_TRUE(cache.access(0, false).hit);  // touch A -> B is LRU
    cache.access(2 * stride, false);          // C evicts B
    EXPECT_TRUE(cache.contains(0 * stride));
    EXPECT_FALSE(cache.contains(1 * stride));
    EXPECT_TRUE(cache.contains(2 * stride));
}

TEST(Cache, DirtyEvictionWritesBack)
{
    Cache cache = smallCache();
    const uint64_t stride = 32 * 64;
    cache.access(0 * stride, true); // dirty A
    cache.access(1 * stride, false);
    const AccessResult r = cache.access(2 * stride, false);
    EXPECT_TRUE(r.evictedDirty) << "A was dirty and LRU";
    EXPECT_EQ(cache.stats().writebacks, 1u);
}

TEST(Cache, CleanEvictionSilent)
{
    Cache cache = smallCache();
    const uint64_t stride = 32 * 64;
    cache.access(0 * stride, false);
    cache.access(1 * stride, false);
    const AccessResult r = cache.access(2 * stride, false);
    EXPECT_FALSE(r.evictedDirty);
    EXPECT_EQ(cache.stats().writebacks, 0u);
}

TEST(Cache, WriteHitMarksDirty)
{
    Cache cache = smallCache();
    const uint64_t stride = 32 * 64;
    cache.access(0 * stride, false); // clean fill
    cache.access(0 * stride, true);  // dirty via write hit
    cache.access(1 * stride, false);
    const AccessResult r = cache.access(2 * stride, false);
    EXPECT_TRUE(r.evictedDirty);
}

TEST(Cache, InvalidateAllDropsLinesKeepsStats)
{
    Cache cache = smallCache();
    cache.access(0x0, false);
    cache.access(0x40, false);
    EXPECT_EQ(cache.validLines(), 2u);
    cache.invalidateAll();
    EXPECT_EQ(cache.validLines(), 0u);
    EXPECT_EQ(cache.stats().accesses, 2u);
    EXPECT_FALSE(cache.access(0x0, false).hit);
}

TEST(Cache, ResetStats)
{
    Cache cache = smallCache();
    cache.access(0x0, false);
    cache.resetStats();
    EXPECT_EQ(cache.stats().accesses, 0u);
    EXPECT_TRUE(cache.access(0x0, false).hit)
        << "contents must survive a stats reset";
}

TEST(Cache, ContainsIsSideEffectFree)
{
    Cache cache = smallCache();
    cache.access(0x0, false);
    const uint64_t accesses = cache.stats().accesses;
    EXPECT_TRUE(cache.contains(0x0));
    EXPECT_FALSE(cache.contains(0x40));
    EXPECT_EQ(cache.stats().accesses, accesses);
}

TEST(Cache, CapacityBehaviour)
{
    // Touch exactly capacity worth of distinct lines: all must fit.
    Cache cache = smallCache(); // 64 lines
    for (uint64_t i = 0; i < 64; ++i)
        cache.access(i * 64, false);
    EXPECT_EQ(cache.validLines(), 64u);
    EXPECT_EQ(cache.stats().misses, 64u);
    // Second pass hits everywhere.
    for (uint64_t i = 0; i < 64; ++i)
        EXPECT_TRUE(cache.access(i * 64, false).hit);
}

TEST(Cache, WorkingSetLargerThanCapacityThrashes)
{
    Cache cache = smallCache();
    for (int pass = 0; pass < 2; ++pass)
        for (uint64_t i = 0; i < 128; ++i)
            cache.access(i * 64, false);
    // Sequential sweep over 2x capacity with LRU: every access
    // misses on the second pass too.
    EXPECT_EQ(cache.stats().hits, 0u);
}

TEST(Cache, DeathOnBadGeometry)
{
    EXPECT_DEATH(Cache("bad", 0, 2, 64, Protection::Ecc),
                 "geometry");
    EXPECT_DEATH(Cache("bad", 4, 2, 48, Protection::Ecc),
                 "power of two");
    EXPECT_DEATH(Cache("bad", 4, 3, 64, Protection::Ecc),
                 "divisible");
}

} // namespace
} // namespace vmargin::sim
