/**
 * @file
 * Unit tests for the X-Gene 2 cache topology.
 */

#include <gtest/gtest.h>

#include "sim/cache_hierarchy.hh"

namespace vmargin::sim
{
namespace
{

TEST(Hierarchy, TopologyMatchesFigure1)
{
    CacheHierarchy h{XGene2Params{}};
    // Per-core parity L1s.
    for (CoreId c = 0; c < 8; ++c) {
        EXPECT_EQ(h.l1i(c).protection(), Protection::Parity);
        EXPECT_EQ(h.l1d(c).protection(), Protection::Parity);
        EXPECT_EQ(h.l1d(c).sizeKb(), 32);
    }
    // Per-PMD ECC L2, shared ECC L3.
    for (PmdId p = 0; p < 4; ++p) {
        EXPECT_EQ(h.l2(p).protection(), Protection::Ecc);
        EXPECT_EQ(h.l2(p).sizeKb(), 256);
    }
    EXPECT_EQ(h.l3().protection(), Protection::Ecc);
    EXPECT_EQ(h.l3().sizeKb(), 8192);
}

TEST(Hierarchy, MissWalksAllLevels)
{
    CacheHierarchy h{XGene2Params{}};
    const HierarchyAccess a = h.dataAccess(0, 0x1000, false);
    EXPECT_TRUE(a.l1Miss);
    EXPECT_TRUE(a.l2Miss);
    EXPECT_TRUE(a.l3Miss);
    // Second touch hits in L1: no lower-level traffic.
    const uint64_t l2_before = h.l2(0).stats().accesses;
    const HierarchyAccess b = h.dataAccess(0, 0x1000, false);
    EXPECT_FALSE(b.l1Miss);
    EXPECT_EQ(h.l2(0).stats().accesses, l2_before);
}

TEST(Hierarchy, PmdPairSharesL2)
{
    CacheHierarchy h{XGene2Params{}};
    h.dataAccess(0, 0x2000, false);
    h.dataAccess(1, 0x3000, false);
    // Both cores of PMD 0 hit the same L2 instance.
    EXPECT_EQ(h.l2(0).stats().accesses, 2u);
    EXPECT_EQ(h.l2(1).stats().accesses, 0u);
    // Cores 2 and 3 use the next L2.
    h.dataAccess(2, 0x2000, false);
    EXPECT_EQ(h.l2(1).stats().accesses, 1u);
}

TEST(Hierarchy, CoresDoNotAliasInSharedLevels)
{
    CacheHierarchy h{XGene2Params{}};
    h.dataAccess(0, 0x4000, false);
    // Same program address from another core must still miss: the
    // model keeps per-core address spaces disjoint.
    const HierarchyAccess a = h.dataAccess(4, 0x4000, false);
    EXPECT_TRUE(a.l3Miss);
}

TEST(Hierarchy, L1EvictionWritesBackIntoL2)
{
    XGene2Params params;
    CacheHierarchy h(params);
    // Fill one L1D set (8 ways) with dirty lines, then evict.
    const uint64_t set_stride =
        static_cast<uint64_t>(params.l1dKb) * 1024 /
        static_cast<uint64_t>(params.l1dAssoc);
    for (int i = 0; i <= params.l1dAssoc; ++i)
        h.dataAccess(0, static_cast<uint64_t>(i) * set_stride, true);
    EXPECT_GE(h.l1d(0).stats().writebacks, 1u);
}

TEST(Hierarchy, InstrFetchUsesInstructionSide)
{
    CacheHierarchy h{XGene2Params{}};
    const HierarchyAccess a = h.instrFetch(0, 0x100);
    EXPECT_TRUE(a.l1Miss);
    EXPECT_EQ(h.l1i(0).stats().accesses, 1u);
    EXPECT_EQ(h.l1d(0).stats().accesses, 0u);
    EXPECT_TRUE(h.instrFetch(0, 0x104).l1Miss == false);
}

TEST(Hierarchy, CodeAndDataDisjoint)
{
    CacheHierarchy h{XGene2Params{}};
    h.dataAccess(0, 0x100, false);
    // Same numeric address on the fetch path must not hit the data
    // line in shared levels.
    const HierarchyAccess a = h.instrFetch(0, 0x100);
    EXPECT_TRUE(a.l3Miss);
}

TEST(Hierarchy, InvalidateAllColdStarts)
{
    CacheHierarchy h{XGene2Params{}};
    h.dataAccess(3, 0x8000, false);
    h.invalidateAll();
    EXPECT_TRUE(h.dataAccess(3, 0x8000, false).l1Miss);
}

TEST(Hierarchy, ResetStatsZeroesEverything)
{
    CacheHierarchy h{XGene2Params{}};
    h.dataAccess(0, 0x1, false);
    h.instrFetch(5, 0x2);
    h.resetStats();
    EXPECT_EQ(h.l1d(0).stats().accesses, 0u);
    EXPECT_EQ(h.l1i(5).stats().accesses, 0u);
    EXPECT_EQ(h.l3().stats().accesses, 0u);
}

TEST(Hierarchy, DeathOnBadIds)
{
    CacheHierarchy h{XGene2Params{}};
    EXPECT_DEATH(h.dataAccess(8, 0, false), "out of range");
    EXPECT_DEATH(h.l2(4), "out of range");
}

} // namespace
} // namespace vmargin::sim
