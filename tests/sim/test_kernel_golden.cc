/**
 * @file
 * Draw-order golden tests for the per-run simulation kernel.
 *
 * The batched kernel refactor (scratch-buffer RNG draws, batch cache
 * walks) is only legal because every RNG stream keeps its exact draw
 * sequence. These tests pin that contract to literal hashes computed
 * on the pre-batching kernel: any accidental reorder of
 * `fault_rng`/`AddressStream` draws — or any change to the xoshiro
 * streams themselves — fails loudly here instead of silently shifting
 * every failure threshold in the characterization results.
 */

#include <gtest/gtest.h>

#include <cstring>

#include "sim/cache_hierarchy.hh"
#include "sim/core.hh"
#include "util/rng.hh"
#include "workloads/spec.hh"

namespace vmargin::sim
{
namespace
{

/** FNV-1a over arbitrary words; chained across calls. */
uint64_t
fnv(uint64_t hash, uint64_t word)
{
    for (int byte = 0; byte < 8; ++byte) {
        hash ^= (word >> (byte * 8)) & 0xFF;
        hash *= 0x100000001b3ULL;
    }
    return hash;
}

uint64_t
fnvDouble(uint64_t hash, double value)
{
    uint64_t bits = 0;
    static_assert(sizeof(bits) == sizeof(value));
    std::memcpy(&bits, &value, sizeof(bits));
    return fnv(hash, bits);
}

constexpr uint64_t kFnvBasis = 0xcbf29ce484222325ULL;

/** Hash every observable field of a run result. */
uint64_t
hashRun(uint64_t hash, const RunResult &r)
{
    hash = fnv(hash, r.systemCrashed);
    hash = fnv(hash, r.applicationCrashed);
    hash = fnv(hash, r.completed);
    hash = fnv(hash, r.outputMatches);
    hash = fnv(hash, static_cast<uint64_t>(r.exitCode));
    hash = fnv(hash, r.sdcEvents);
    hash = fnv(hash, r.correctedErrors);
    hash = fnv(hash, r.uncorrectedErrors);
    hash = fnv(hash, r.epochsExecuted);
    hash = fnvDouble(hash, r.simulatedSeconds);
    hash = fnvDouble(hash, r.avgIpc);
    hash = fnvDouble(hash, r.activityFactor);
    for (const uint64_t counter : r.counters)
        hash = fnv(hash, counter);
    for (const auto &e : r.errors) {
        hash = fnv(hash, static_cast<uint64_t>(e.kind));
        hash = fnv(hash, static_cast<uint64_t>(e.site));
        hash = fnv(hash, e.core);
        hash = fnv(hash, e.epoch);
        hash = fnv(hash, e.count);
    }
    return hash;
}

/** The kernel's exact per-run streams, reproduced from their seeds. */
TEST(KernelGolden, FaultRngAndAddressStreamSequences)
{
    const Seed seed = 0x5EEDULL;

    util::Rng fault_rng(util::mixSeed(seed, 0xFA17ULL));
    uint64_t hash = kFnvBasis;
    for (int i = 0; i < 256; ++i)
        hash = fnv(hash, fault_rng.next());

    util::Rng addr_seed_rng(util::mixSeed(seed, 0xADD2ULL));
    wl::AddressStream data_stream(1 << 20, 0.7, 0.5,
                                  addr_seed_rng.next());
    wl::AddressStream instr_stream(1 << 16, 0.95, 0.6,
                                   addr_seed_rng.next());
    for (int i = 0; i < 256; ++i)
        hash = fnv(hash, data_stream.next());
    for (int i = 0; i < 256; ++i)
        hash = fnv(hash, instr_stream.next());

    EXPECT_EQ(hash, 0x30ef81558a845dcaULL)
        << "raw RNG/address stream sequences changed";
}

/**
 * A representative run per effect regime, hashed end to end: every
 * counter, error record and observable. Reordering any draw inside
 * Core::run (the batching refactor's one forbidden failure mode)
 * changes this hash.
 */
TEST(KernelGolden, RunResultAcrossVoltageGrid)
{
    XGene2Params params;
    CacheHierarchy caches(params);
    Core core(0, params, &caches);

    OnsetSet onsets;
    onsets.sdc = 900;
    onsets.ce = 905;
    onsets.ue = 885;
    onsets.ac = 880;
    onsets.sc = 870;

    uint64_t hash = kFnvBasis;
    // Above every onset; straddling CE/SDC; inside UE/AC; deep in
    // the crash region — all four fault regimes contribute.
    for (const MilliVolt v : {980, 910, 890, 875, 860}) {
        ExecutionConfig config;
        config.voltage = v;
        config.seed = util::mixSeed(0xC0FFEEULL,
                                    static_cast<uint64_t>(v));
        config.maxEpochs = 12;
        caches.invalidateAll();
        const RunResult r =
            core.run(wl::findWorkload("bwaves/ref"), onsets, config);
        hash = hashRun(hash, r);
    }
    // di/dt droop exercises the epoch-swing path too.
    {
        ExecutionConfig config;
        config.voltage = 895;
        config.seed = 0xD1D7ULL;
        config.maxEpochs = 12;
        config.droopSensitivityMv = 25.0;
        caches.invalidateAll();
        const RunResult r =
            core.run(wl::findWorkload("mcf/ref"), onsets, config);
        hash = hashRun(hash, r);
    }

    EXPECT_EQ(hash, 0x80175df6fa2a45b3ULL)
        << "kernel draw order or outcome semantics changed";
}

} // namespace
} // namespace vmargin::sim
