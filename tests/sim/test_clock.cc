/**
 * @file
 * Unit tests for PMD clocking and the skip/division speed classes.
 */

#include <gtest/gtest.h>

#include "sim/clock.hh"

namespace vmargin::sim
{
namespace
{

TEST(Clock, StartsAtMaximum)
{
    const ClockController clock{XGene2Params{}};
    EXPECT_EQ(clock.frequency(), 2400);
    EXPECT_EQ(clock.speedClass(), SpeedClass::Full);
}

TEST(Clock, LegalGrid)
{
    const ClockController clock{XGene2Params{}};
    for (MegaHertz f = 300; f <= 2400; f += 300)
        EXPECT_TRUE(clock.legal(f)) << f;
    EXPECT_FALSE(clock.legal(250));
    EXPECT_FALSE(clock.legal(2700));
    EXPECT_FALSE(clock.legal(1000));
}

TEST(Clock, SetRejectsIllegal)
{
    ClockController clock{XGene2Params{}};
    EXPECT_FALSE(clock.set(1000));
    EXPECT_EQ(clock.frequency(), 2400);
    EXPECT_TRUE(clock.set(1200));
    EXPECT_EQ(clock.frequency(), 1200);
}

TEST(Clock, SpeedClassBoundary)
{
    // Paper section 3.2: above 1.2 GHz behaves like 2.4 GHz (clock
    // skipping keeps full-speed edges); 1.2 GHz and below use the
    // divided clock.
    const ClockController clock{XGene2Params{}};
    EXPECT_EQ(clock.speedClassOf(2400), SpeedClass::Full);
    EXPECT_EQ(clock.speedClassOf(2100), SpeedClass::Full);
    EXPECT_EQ(clock.speedClassOf(1500), SpeedClass::Full);
    EXPECT_EQ(clock.speedClassOf(1200), SpeedClass::Half);
    EXPECT_EQ(clock.speedClassOf(900), SpeedClass::Half);
    EXPECT_EQ(clock.speedClassOf(300), SpeedClass::Half);
}

TEST(Clock, RelativePerformance)
{
    ClockController clock{XGene2Params{}};
    EXPECT_DOUBLE_EQ(clock.relativePerformance(), 1.0);
    clock.set(1200);
    EXPECT_DOUBLE_EQ(clock.relativePerformance(), 0.5);
    clock.set(300);
    EXPECT_DOUBLE_EQ(clock.relativePerformance(), 0.125);
}

TEST(Clock, Reset)
{
    ClockController clock{XGene2Params{}};
    clock.set(300);
    clock.reset();
    EXPECT_EQ(clock.frequency(), 2400);
}

TEST(Clock, SpeedClassNames)
{
    EXPECT_EQ(speedClassName(SpeedClass::Full), "full");
    EXPECT_EQ(speedClassName(SpeedClass::Half), "half");
}

} // namespace
} // namespace vmargin::sim
