/**
 * @file
 * Unit tests for the chip assembly (PMDs, domains, run routing).
 */

#include <gtest/gtest.h>

#include "sim/chip.hh"
#include "workloads/spec.hh"

namespace vmargin::sim
{
namespace
{

TEST(Pmd, OwnsItsCores)
{
    XGene2Params params;
    CacheHierarchy caches(params);
    Pmd pmd(1, params, &caches);
    EXPECT_TRUE(pmd.owns(2));
    EXPECT_TRUE(pmd.owns(3));
    EXPECT_FALSE(pmd.owns(4));
    EXPECT_EQ(pmd.coreIds(), (std::vector<CoreId>{2, 3}));
    EXPECT_EQ(pmd.core(2).id(), 2);
    EXPECT_EQ(pmd.localCore(1).id(), 3);
}

TEST(Pmd, DeathOnForeignCore)
{
    XGene2Params params;
    CacheHierarchy caches(params);
    Pmd pmd(1, params, &caches);
    EXPECT_DEATH(pmd.core(5), "another PMD");
}

TEST(Chip, Construction)
{
    Chip chip(XGene2Params{}, ChipCorner::TFF, 7);
    EXPECT_EQ(chip.corner(), ChipCorner::TFF);
    EXPECT_EQ(chip.serial(), 7u);
    EXPECT_EQ(chip.name(), "TFF#7");
    EXPECT_EQ(chip.pmdDomain().voltage(), 980);
    EXPECT_EQ(chip.socDomain().voltage(), 950);
    for (PmdId p = 0; p < 4; ++p)
        EXPECT_EQ(chip.pmd(p).clock().frequency(), 2400);
}

TEST(Chip, CoreRouting)
{
    Chip chip(XGene2Params{}, ChipCorner::TTT, 1);
    for (CoreId c = 0; c < 8; ++c)
        EXPECT_EQ(chip.core(c).id(), c);
}

TEST(Chip, RunUsesCurrentSettings)
{
    Chip chip(XGene2Params{}, ChipCorner::TTT, 1);
    chip.pmdDomain().set(960);
    chip.pmd(2).clock().set(1200);
    ExecutionConfig trim;
    trim.maxEpochs = 5;
    const RunResult r = chip.runOnCore(
        4, wl::findWorkload("gromacs/ref"), 1, trim);
    EXPECT_EQ(r.voltage, 960);
    EXPECT_EQ(r.frequency, 1200);
}

TEST(Chip, RunAppendsEdacRecords)
{
    Chip chip(XGene2Params{}, ChipCorner::TTT, 1);
    // Deep in the unsafe region of a sensitive core: CEs certain,
    // but above the crash point for bwaves (sdc onset ~898,
    // sc ~ -27).
    chip.pmdDomain().set(880);
    ExecutionConfig trim;
    trim.maxEpochs = 10;
    const RunResult r = chip.runOnCore(
        0, wl::findWorkload("bwaves/ref"), 3, trim);
    if (r.correctedErrors > 0) {
        EXPECT_GE(chip.edac().correctedCount(), r.correctedErrors);
    }
}

TEST(Chip, ResetRestoresEverything)
{
    Chip chip(XGene2Params{}, ChipCorner::TTT, 1);
    chip.pmdDomain().set(760);
    chip.socDomain().set(900);
    chip.pmd(0).clock().set(300);
    chip.caches().dataAccess(0, 0x1000, true);
    ErrorRecord record;
    chip.edac().report(record);

    chip.reset();
    EXPECT_EQ(chip.pmdDomain().voltage(), 980);
    EXPECT_EQ(chip.socDomain().voltage(), 950);
    EXPECT_EQ(chip.pmd(0).clock().frequency(), 2400);
    EXPECT_TRUE(chip.edac().records().empty());
    EXPECT_TRUE(chip.caches().dataAccess(0, 0x1000, false).l1Miss);
}

TEST(Chip, SameSerialSameBehaviour)
{
    Chip a(XGene2Params{}, ChipCorner::TSS, 3);
    Chip b(XGene2Params{}, ChipCorner::TSS, 3);
    const auto w = wl::findWorkload("milc/ref");
    a.pmdDomain().set(880);
    b.pmdDomain().set(880);
    ExecutionConfig trim;
    trim.maxEpochs = 8;
    const RunResult ra = a.runOnCore(2, w, 99, trim);
    const RunResult rb = b.runOnCore(2, w, 99, trim);
    EXPECT_EQ(ra.sdcEvents, rb.sdcEvents);
    EXPECT_EQ(ra.correctedErrors, rb.correctedErrors);
    EXPECT_EQ(ra.systemCrashed, rb.systemCrashed);
}

TEST(Chip, DeathOnBadPmd)
{
    Chip chip(XGene2Params{}, ChipCorner::TTT, 1);
    EXPECT_DEATH(chip.pmd(4), "out of range");
}

} // namespace
} // namespace vmargin::sim
