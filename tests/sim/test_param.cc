/**
 * @file
 * Unit tests for platform parameters (paper Table 2 invariants).
 */

#include <gtest/gtest.h>

#include "sim/param.hh"

namespace vmargin::sim
{
namespace
{

TEST(Params, Table2Defaults)
{
    const XGene2Params p;
    EXPECT_EQ(p.numCores, 8);
    EXPECT_EQ(p.numPmds, 4);
    EXPECT_EQ(p.coresPerPmd, 2);
    EXPECT_EQ(p.nominalPmdVoltage, 980);
    EXPECT_EQ(p.nominalSocVoltage, 950);
    EXPECT_EQ(p.voltageStepSize, 5);
    EXPECT_EQ(p.maxFrequency, 2400);
    EXPECT_EQ(p.minFrequency, 300);
    EXPECT_EQ(p.frequencyStep, 300);
    EXPECT_EQ(p.issueWidth, 4);
    EXPECT_EQ(p.l1iKb, 32);
    EXPECT_EQ(p.l1dKb, 32);
    EXPECT_EQ(p.l2Kb, 256);
    EXPECT_EQ(p.l3Kb, 8192);
    EXPECT_DOUBLE_EQ(p.maxTdpWatts, 35.0);
    EXPECT_EQ(p.technologyNm, 28);
    p.validate();
}

TEST(Params, PmdOfCore)
{
    const XGene2Params p;
    EXPECT_EQ(p.pmdOfCore(0), 0);
    EXPECT_EQ(p.pmdOfCore(1), 0);
    EXPECT_EQ(p.pmdOfCore(4), 2);
    EXPECT_EQ(p.pmdOfCore(7), 3);
}

TEST(Params, DeathOnInconsistentTopology)
{
    XGene2Params p;
    p.numCores = 7;
    EXPECT_DEATH(p.validate(), "cores");
}

TEST(Params, DeathOnMisalignedNominal)
{
    XGene2Params p;
    p.nominalPmdVoltage = 982;
    EXPECT_DEATH(p.validate(), "multiples");
}

TEST(Params, DeathOnBadFrequencyGrid)
{
    XGene2Params p;
    p.maxFrequency = 2500;
    EXPECT_DEATH(p.validate(), "frequency");
}

TEST(Params, DeathOnNonPow2Line)
{
    XGene2Params p;
    p.cacheLineBytes = 48;
    EXPECT_DEATH(p.validate(), "power of two");
}

TEST(CornerNames, RoundTrip)
{
    for (ChipCorner c : kAllCorners)
        EXPECT_EQ(cornerFromName(cornerName(c)), c);
}

TEST(CornerNames, UnknownIsFatal)
{
    EXPECT_EXIT(cornerFromName("XYZ"),
                ::testing::ExitedWithCode(1), "unknown chip corner");
}

} // namespace
} // namespace vmargin::sim
