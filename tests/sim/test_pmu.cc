/**
 * @file
 * Unit tests for the PMU event bank.
 */

#include <gtest/gtest.h>

#include <set>

#include "sim/pmu.hh"

namespace vmargin::sim
{
namespace
{

TEST(Pmu, Exactly101Events)
{
    // Paper section 4.1: "The X-Gene 2 provides 101 performance
    // counters in total".
    EXPECT_EQ(kNumPmuEvents, 101u);
    EXPECT_EQ(Pmu::eventNames().size(), 101u);
}

TEST(Pmu, NamesAreUnique)
{
    std::set<std::string> names;
    for (const auto &name : Pmu::eventNames())
        EXPECT_TRUE(names.insert(name).second) << name;
}

TEST(Pmu, NameRoundTrip)
{
    for (size_t i = 0; i < kNumPmuEvents; ++i) {
        const auto event = static_cast<PmuEvent>(i);
        EXPECT_EQ(pmuEventByName(pmuEventName(event)), event);
    }
}

TEST(Pmu, PaperSelectedFeaturesExist)
{
    // The five RFE-selected events of section 4.2.
    EXPECT_NO_THROW(pmuEventByName("DISPATCH_STALL_CYCLES"));
    EXPECT_NO_THROW(pmuEventByName("EXC_TAKEN"));
    EXPECT_NO_THROW(pmuEventByName("MEM_ACCESS_RD"));
    EXPECT_NO_THROW(pmuEventByName("BTB_MIS_PRED"));
    EXPECT_NO_THROW(pmuEventByName("BR_COND_INDIRECT"));
}

TEST(Pmu, AddAndRead)
{
    Pmu pmu;
    EXPECT_EQ(pmu.value(PmuEvent::INST_RETIRED), 0u);
    pmu.add(PmuEvent::INST_RETIRED, 10);
    pmu.add(PmuEvent::INST_RETIRED, 5);
    EXPECT_EQ(pmu.value(PmuEvent::INST_RETIRED), 15u);
    EXPECT_EQ(pmu.value(PmuEvent::CPU_CYCLES), 0u);
}

TEST(Pmu, ResetZeroes)
{
    Pmu pmu;
    pmu.add(PmuEvent::BR_MIS_PRED, 3);
    pmu.reset();
    EXPECT_EQ(pmu.value(PmuEvent::BR_MIS_PRED), 0u);
}

TEST(Pmu, SnapshotIsACopy)
{
    Pmu pmu;
    pmu.add(PmuEvent::MEM_ACCESS, 7);
    const PmuSnapshot snap = pmu.snapshot();
    pmu.add(PmuEvent::MEM_ACCESS, 1);
    EXPECT_EQ(snap[static_cast<size_t>(PmuEvent::MEM_ACCESS)], 7u);
}

TEST(Pmu, UnknownNamePanics)
{
    EXPECT_DEATH(pmuEventByName("NOT_AN_EVENT"), "unknown event");
}

} // namespace
} // namespace vmargin::sim
