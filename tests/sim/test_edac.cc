/**
 * @file
 * Unit tests for the EDAC error log.
 */

#include <gtest/gtest.h>

#include "sim/edac.hh"

namespace vmargin::sim
{
namespace
{

ErrorRecord
record(ErrorKind kind, ErrorSite site, uint64_t count)
{
    ErrorRecord r;
    r.kind = kind;
    r.site = site;
    r.count = count;
    return r;
}

TEST(Edac, StartsEmpty)
{
    const EdacLog log;
    EXPECT_TRUE(log.records().empty());
    EXPECT_EQ(log.correctedCount(), 0u);
    EXPECT_EQ(log.uncorrectedCount(), 0u);
}

TEST(Edac, CountsByKind)
{
    EdacLog log;
    log.report(record(ErrorKind::Corrected, ErrorSite::L2Cache, 3));
    log.report(record(ErrorKind::Corrected, ErrorSite::L3Cache, 2));
    log.report(
        record(ErrorKind::Uncorrected, ErrorSite::L2Cache, 1));
    EXPECT_EQ(log.correctedCount(), 5u);
    EXPECT_EQ(log.uncorrectedCount(), 1u);
    EXPECT_EQ(log.records().size(), 3u);
}

TEST(Edac, CountsBySite)
{
    EdacLog log;
    log.report(record(ErrorKind::Corrected, ErrorSite::L2Cache, 3));
    log.report(record(ErrorKind::Corrected, ErrorSite::L2Cache, 4));
    log.report(record(ErrorKind::Corrected, ErrorSite::Dram, 1));
    log.report(
        record(ErrorKind::Uncorrected, ErrorSite::L2Cache, 9));
    EXPECT_EQ(log.correctedAt(ErrorSite::L2Cache), 7u);
    EXPECT_EQ(log.correctedAt(ErrorSite::Dram), 1u);
    EXPECT_EQ(log.correctedAt(ErrorSite::L1Cache), 0u);
}

TEST(Edac, Clear)
{
    EdacLog log;
    log.report(record(ErrorKind::Corrected, ErrorSite::L2Cache, 3));
    log.clear();
    EXPECT_TRUE(log.records().empty());
    EXPECT_EQ(log.correctedCount(), 0u);
}

TEST(Edac, Names)
{
    EXPECT_EQ(errorKindName(ErrorKind::Corrected), "CE");
    EXPECT_EQ(errorKindName(ErrorKind::Uncorrected), "UE");
    EXPECT_EQ(errorSiteName(ErrorSite::L1Cache), "L1Cache");
    EXPECT_EQ(errorSiteName(ErrorSite::L2Cache), "L2Cache");
    EXPECT_EQ(errorSiteName(ErrorSite::L3Cache), "L3Cache");
    EXPECT_EQ(errorSiteName(ErrorSite::Dram), "DRAM");
}

} // namespace
} // namespace vmargin::sim
