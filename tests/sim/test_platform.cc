/**
 * @file
 * Unit tests for the platform, watchdog, SLIMpro interface and the
 * thermal controller.
 */

#include <gtest/gtest.h>

#include "sim/platform.hh"
#include "sim/slimpro.hh"
#include "sim/watchdog.hh"
#include "workloads/spec.hh"

namespace vmargin::sim
{
namespace
{

Platform
machine()
{
    return Platform(XGene2Params{}, ChipCorner::TTT, 1);
}

TEST(Platform, BootsRunning)
{
    Platform p = machine();
    EXPECT_TRUE(p.responsive());
    EXPECT_EQ(p.state(), MachineState::Running);
    EXPECT_EQ(p.bootCount(), 1u);
}

TEST(Platform, CleanRunStaysUp)
{
    Platform p = machine();
    ExecutionConfig trim;
    trim.maxEpochs = 5;
    const RunResult r =
        p.runWorkload(4, wl::findWorkload("namd/ref"), 1, trim);
    EXPECT_FALSE(r.abnormal());
    EXPECT_TRUE(p.responsive());
}

TEST(Platform, DeepUndervoltHangsTheMachine)
{
    Platform p = machine();
    p.chip().pmdDomain().set(820); // below every crash point
    ExecutionConfig trim;
    trim.maxEpochs = 10;
    const RunResult r =
        p.runWorkload(0, wl::findWorkload("bwaves/ref"), 1, trim);
    EXPECT_TRUE(r.systemCrashed);
    EXPECT_FALSE(p.responsive());
    EXPECT_EQ(p.state(), MachineState::Unresponsive);
}

TEST(Platform, RunOnHungMachineReportsCrash)
{
    Platform p = machine();
    p.chip().pmdDomain().set(820);
    ExecutionConfig trim;
    trim.maxEpochs = 10;
    (void)p.runWorkload(0, wl::findWorkload("bwaves/ref"), 1, trim);
    ASSERT_FALSE(p.responsive());
    const RunResult r =
        p.runWorkload(1, wl::findWorkload("namd/ref"), 2, trim);
    EXPECT_TRUE(r.systemCrashed);
    EXPECT_EQ(r.epochsExecuted, 0u);
}

TEST(Platform, PowerCycleRecovers)
{
    Platform p = machine();
    p.chip().pmdDomain().set(820);
    ExecutionConfig trim;
    trim.maxEpochs = 10;
    (void)p.runWorkload(0, wl::findWorkload("bwaves/ref"), 1, trim);
    p.powerCycle();
    EXPECT_TRUE(p.responsive());
    EXPECT_EQ(p.bootCount(), 2u);
    EXPECT_EQ(p.chip().pmdDomain().voltage(), 980)
        << "reboot restores nominal settings";
}

TEST(Platform, PowerOff)
{
    Platform p = machine();
    p.powerOff();
    EXPECT_FALSE(p.responsive());
    EXPECT_EQ(p.state(), MachineState::Off);
}

TEST(Watchdog, NoInterventionWhenHealthy)
{
    Platform p = machine();
    Watchdog dog(&p);
    EXPECT_FALSE(dog.ensureResponsive(WatchdogContext::Poll));
    EXPECT_EQ(dog.interventions(), 0u);
}

TEST(Watchdog, PowerCyclesHungMachine)
{
    Platform p = machine();
    Watchdog dog(&p);
    p.chip().pmdDomain().set(820);
    ExecutionConfig trim;
    trim.maxEpochs = 10;
    (void)p.runWorkload(0, wl::findWorkload("bwaves/ref"), 1, trim);
    ASSERT_FALSE(p.responsive());

    EXPECT_TRUE(dog.ensureResponsive(WatchdogContext::PreRunCheck));
    EXPECT_TRUE(p.responsive());
    ASSERT_EQ(dog.interventions(), 1u);
    EXPECT_EQ(dog.events()[0].context, WatchdogContext::PreRunCheck);
    EXPECT_EQ(dog.events()[0].outcome, WatchdogOutcome::PowerCycled);
    EXPECT_EQ(dog.events()[0].pmdVoltage, 820)
        << "event records the voltage that killed the machine";
}

TEST(SlimPro, VoltageAndFrequencyControl)
{
    Platform p = machine();
    SlimPro mgmt(&p);
    EXPECT_TRUE(mgmt.setPmdVoltage(905));
    EXPECT_EQ(mgmt.pmdVoltage(), 905);
    EXPECT_FALSE(mgmt.setPmdVoltage(902)) << "off-grid";
    EXPECT_TRUE(mgmt.setSocVoltage(945));
    EXPECT_EQ(mgmt.socVoltage(), 945);
    EXPECT_TRUE(mgmt.setPmdFrequency(2, 1200));
    EXPECT_EQ(mgmt.pmdFrequency(2), 1200);
    EXPECT_FALSE(mgmt.setPmdFrequency(2, 1000));
    EXPECT_TRUE(mgmt.setAllFrequencies(300));
    for (PmdId pmd = 0; pmd < 4; ++pmd)
        EXPECT_EQ(mgmt.pmdFrequency(pmd), 300);
}

TEST(SlimPro, RefusesWhenMachineDown)
{
    Platform p = machine();
    SlimPro mgmt(&p);
    p.powerOff();
    EXPECT_FALSE(mgmt.setPmdVoltage(975));
    EXPECT_FALSE(mgmt.setPmdFrequency(0, 1200));
}

TEST(SlimPro, ErrorLogAccess)
{
    Platform p = machine();
    SlimPro mgmt(&p);
    ErrorRecord record;
    p.chip().edac().report(record);
    EXPECT_EQ(mgmt.errorLog().records().size(), 1u);
    mgmt.clearErrorLog();
    EXPECT_TRUE(mgmt.errorLog().records().empty());
}

TEST(Thermal, SettlesAtTarget)
{
    ThermalModel thermal(26.0);
    thermal.setTarget(43.0);
    for (int i = 0; i < 100; ++i)
        thermal.step(1.0, 20.0);
    EXPECT_NEAR(thermal.temperature(), 43.0, 0.5);
}

TEST(Thermal, PowerLeavesOnlyResidual)
{
    // The fan controller compensates load: +/-20 W moves the
    // stabilized temperature by ~1 C, not tens.
    ThermalModel hot(26.0), cold(26.0);
    for (int i = 0; i < 100; ++i) {
        hot.step(1.0, 35.0);
        cold.step(1.0, 5.0);
    }
    EXPECT_GT(hot.temperature(), cold.temperature());
    EXPECT_LT(hot.temperature() - cold.temperature(), 3.0);
}

TEST(Thermal, NeverBelowAmbient)
{
    ThermalModel thermal(26.0);
    thermal.setTarget(10.0); // clamped to ambient
    for (int i = 0; i < 50; ++i)
        thermal.step(1.0, 0.0);
    EXPECT_GE(thermal.temperature(), 26.0);
}

TEST(Thermal, ResetReturnsToAmbient)
{
    ThermalModel thermal(26.0);
    thermal.step(100.0, 20.0);
    thermal.reset();
    EXPECT_DOUBLE_EQ(thermal.temperature(), 26.0);
}

TEST(Platform, StabilizedAt43AfterBoot)
{
    Platform p = machine();
    // The paper stabilizes every experiment at 43 C.
    EXPECT_NEAR(p.thermal().temperature(), 43.0, 1.5);
}

} // namespace
} // namespace vmargin::sim
