/**
 * @file
 * Quickstart: characterize one benchmark on one core of a simulated
 * X-Gene 2, print the regions of operation, the severity ramp and
 * the energy-saving headline.
 *
 * Build & run:
 *   cmake -B build -G Ninja && cmake --build build
 *   ./build/examples/quickstart --workload bwaves --core 4
 */

#include <iostream>

#include "core/framework.hh"
#include "core/mitigation.hh"
#include "power/power_model.hh"
#include "sim/platform.hh"
#include "util/cli.hh"
#include "util/strings.hh"
#include "util/table.hh"
#include "workloads/spec.hh"

using namespace vmargin;

int
main(int argc, char **argv)
{
    util::CliParser cli("quickstart",
                        "characterize one benchmark under "
                        "undervolting");
    cli.addOption("workload", "bwaves", "benchmark (see --list)");
    cli.addOption("core", "4", "core under characterization (0-7)");
    cli.addOption("chip", "TTT", "chip corner: TTT, TFF or TSS");
    cli.addOption("campaigns", "10", "campaign repetitions");
    cli.addOption("workers", "0",
                  "parallel measurement workers (0 = hardware)");
    cli.addFlag("all-cores",
                "characterize every core, not just --core");
    cli.addFlag("list", "list available workloads and exit");
    if (!cli.parse(argc, argv))
        return 1;

    if (cli.flag("list")) {
        for (const auto &w : wl::fullSuite())
            std::cout << w.id() << '\n';
        return 0;
    }

    const auto workload = wl::findWorkload(cli.value("workload"));
    const auto core = static_cast<CoreId>(cli.intValue("core"));
    const auto corner = sim::cornerFromName(cli.value("chip"));

    // A platform is one micro-server around one fabricated chip.
    sim::Platform platform(sim::XGene2Params{}, corner, 1);
    CharacterizationFramework framework(&platform);

    FrameworkConfig config;
    config.workloads = {workload};
    config.cores = {core};
    if (cli.flag("all-cores")) {
        config.cores.clear();
        for (CoreId c = 0; c < 8; ++c)
            config.cores.push_back(c);
    }
    config.campaigns = static_cast<int>(cli.intValue("campaigns"));
    config.workers = static_cast<int>(cli.intValue("workers"));
    config.startVoltage = 930;
    config.endVoltage = 830;

    std::cout << "characterizing " << workload.id() << " on "
              << (cli.flag("all-cores")
                      ? std::string("all cores")
                      : "core " + std::to_string(core))
              << " of chip " << platform.chip().name() << " ("
              << config.campaigns << " campaigns, 5 mV "
              << "steps, watchdog armed)...\n";
    const auto report = framework.characterize(config);

    if (cli.flag("all-cores")) {
        util::TablePrinter vmins(
            {"core", "safe Vmin (mV)", "severity @ Vmin-5"});
        for (const CoreId c : config.cores) {
            const auto &a = report.cell(workload.id(), c).analysis;
            const MilliVolt below =
                a.vmin - 5 >= config.endVoltage ? a.vmin - 5
                                                : a.vmin;
            vmins.addRow({std::to_string(c),
                          std::to_string(a.vmin),
                          util::formatDouble(
                              a.severityByVoltage.at(below), 1)});
        }
        vmins.print(std::cout);
        std::cout << "\nper-core detail below is for core " << core
                  << ".\n\n";
    }
    const auto &analysis = report.cell(workload.id(), core).analysis;

    util::TablePrinter table(
        {"voltage (mV)", "region", "severity", "mitigation"});
    for (auto it = analysis.regions.rbegin();
         it != analysis.regions.rend(); ++it) {
        const auto &[voltage, region] = *it;
        const double sev = analysis.severityByVoltage.at(voltage);
        table.addRow({std::to_string(voltage), regionName(region),
                      util::formatDouble(sev, 1),
                      mitigationActionName(
                          adviseMitigation(sev).action)});
    }
    table.print(std::cout);

    const double savings = power::savingsPercent(
        power::relativeDynamicPower(analysis.vmin, 980, 1.0));
    std::cout << "\nsafe Vmin        : " << analysis.vmin << " mV"
              << " (guardband " << analysis.guardband(980)
              << " mV below nominal)\n"
              << "unsafe region    : " << analysis.unsafeWidth()
              << " mV wide\n"
              << "highest crash    : "
              << analysis.highestCrashVoltage << " mV\n"
              << "watchdog resets  : "
              << report.watchdogInterventions << "\n"
              << "power at Vmin    : "
              << util::formatDouble(100.0 - savings, 1)
              << "% of nominal (" << util::formatDouble(savings, 1)
              << "% savings, same performance)\n";
    return 0;
}
