/**
 * @file
 * Closed-loop undervolting daemon: train severity predictors from a
 * characterization, hand them to the online governor, and let the
 * daemon drive the shared voltage domain for a multi-programmed
 * workload — measuring the realized energy savings and the safety
 * record (abnormal rounds, crashes, watchdog resets).
 *
 *   ./build/examples/governor_daemon --rounds 30 --tolerance 0
 *   ./build/examples/governor_daemon --tolerance 4   # SDC-tolerant
 */

#include <iostream>

#include "core/predictor.hh"
#include "sched/daemon.hh"
#include "sim/platform.hh"
#include "util/cli.hh"
#include "util/strings.hh"
#include "util/table.hh"
#include "workloads/spec.hh"

using namespace vmargin;

int
main(int argc, char **argv)
{
    util::CliParser cli("governor_daemon",
                        "closed-loop predictor-guided undervolting");
    cli.addOption("chip", "TTT", "chip corner");
    cli.addOption("rounds", "30", "scheduling rounds");
    cli.addOption("tolerance", "0",
                  "severity tolerance (0 = fully safe, up to 4 for "
                  "SDC-tolerant applications)");
    cli.addOption("guard", "1", "guard steps above the decision");
    cli.addFlag("reexec",
                "re-execute SDC-corrupted tasks at nominal voltage "
                "(section 4.4 recovery)");
    cli.addFlag("supervise",
                "wrap the governor in the margin supervisor "
                "(adaptive guardband, quarantine, emergency clamp)");
    cli.addOption("journal", "",
                  "daemon journal path (crash-persistent sessions; "
                  "rerun with the same arguments to resume)");
    if (!cli.parse(argc, argv))
        return 1;

    sim::Platform platform(sim::XGene2Params{},
                           sim::cornerFromName(cli.value("chip")),
                           1);

    // Offline: characterize + profile + train per-core predictors.
    const std::vector<CoreId> cores = {0, 2, 4, 6};
    const auto workloads = wl::headlineSuite();
    CharacterizationFramework framework(&platform);
    FrameworkConfig config;
    config.workloads = workloads;
    config.cores = cores;
    config.campaigns = 8;
    config.startVoltage = 930;
    config.endVoltage = 840;
    std::cout << "offline: characterizing "
              << workloads.size() << " benchmarks on "
              << cores.size() << " cores...\n";
    const auto report = framework.characterize(config);

    Profiler profiler(&platform);
    const auto profiles = profiler.profileSuite(workloads, 0, 15);

    sched::GovernorConfig governor_config;
    governor_config.severityTolerance =
        cli.doubleValue("tolerance");
    governor_config.guardSteps =
        static_cast<int>(cli.intValue("guard"));
    sched::VoltageGovernor governor(governor_config);
    for (CoreId core : cores) {
        const auto dataset =
            buildSeverityDataset(profiles, report, core);
        LinearPredictor predictor;
        predictor.fit(dataset.x, dataset.y, 5, 8);
        governor.setPredictor(core, std::move(predictor));
    }

    // Online: one workload per controlled core, daemon in charge.
    sched::GovernorDaemon daemon(&platform, std::move(governor));
    for (const auto &profile : profiles)
        daemon.registerProfile(profile);

    std::vector<Placement> placements = {
        {"bwaves/ref", 0},
        {"leslie3d/ref", 2},
        {"namd/ref", 4},
        {"mcf/ref", 6},
    };
    const int rounds = static_cast<int>(cli.intValue("rounds"));
    std::cout << "online: running " << rounds
              << " scheduling rounds...\n\n";
    sched::DaemonOptions options;
    options.reexecuteOnSdc = cli.flag("reexec");
    options.supervise = cli.flag("supervise");
    options.journalPath = cli.value("journal");
    const auto result = daemon.run(placements, rounds, 42, options);

    util::TablePrinter table({"round", "voltage (mV)",
                              "energy (J)", "abnormal",
                              "crashed"});
    for (const auto &record : result.rounds) {
        if (record.round % 5 && !record.anyAbnormal)
            continue; // keep the listing short
        table.addRow({std::to_string(record.round),
                      std::to_string(record.voltage),
                      util::formatDouble(record.energyJoule, 3),
                      record.anyAbnormal ? "yes" : "",
                      record.crashed ? "yes" : ""});
    }
    table.print(std::cout);

    std::cout << '\n' << sched::formatDaemonSummary(result);
    return 0;
}
