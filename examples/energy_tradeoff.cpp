/**
 * @file
 * Energy/performance trade-offs for a multi-programmed workload
 * (paper section 5): characterize the chip, place tasks on cores
 * with the Vmin-aware allocator, and walk the Figure 9 ladder of
 * frequency/voltage steps.
 *
 *   ./build/examples/energy_tradeoff \
 *       --tasks bwaves,cactusADM,dealII,gromacs,leslie3d,mcf,milc,namd
 */

#include <iostream>

#include "core/framework.hh"
#include "core/tradeoff.hh"
#include "sched/allocator.hh"
#include "sim/platform.hh"
#include "util/cli.hh"
#include "util/strings.hh"
#include "util/table.hh"
#include "workloads/spec.hh"

using namespace vmargin;

int
main(int argc, char **argv)
{
    util::CliParser cli("energy_tradeoff",
                        "Vmin-aware scheduling and the Figure 9 "
                        "ladder");
    cli.addOption("chip", "TTT", "chip corner");
    cli.addOption(
        "tasks",
        "bwaves,cactusADM,dealII,gromacs,leslie3d,mcf,milc,namd",
        "comma-separated benchmarks (max 8)");
    cli.addOption("campaigns", "6", "campaign repetitions");
    if (!cli.parse(argc, argv))
        return 1;

    std::vector<std::string> tasks;
    for (const auto &token : util::split(cli.value("tasks"), ','))
        tasks.push_back(wl::findWorkload(util::trim(token)).id());

    sim::Platform platform(sim::XGene2Params{},
                           sim::cornerFromName(cli.value("chip")),
                           1);
    CharacterizationFramework framework(&platform);

    FrameworkConfig config;
    for (const auto &id : tasks)
        config.workloads.push_back(wl::findWorkload(id));
    config.cores = {0, 1, 2, 3, 4, 5, 6, 7};
    config.campaigns = static_cast<int>(cli.intValue("campaigns"));
    config.startVoltage = 930;
    config.endVoltage = 840;

    std::cout << "characterizing " << tasks.size()
              << " tasks on all 8 cores of "
              << platform.chip().name() << "...\n\n";
    const auto report = framework.characterize(config);

    // Vmin-aware placement vs the naive one.
    const sched::TaskAllocator allocator(report);
    const auto naive = allocator.allocateNaive(tasks);
    const auto smart = allocator.allocate(tasks);

    std::cout << "naive placement needs "
              << naive.requiredVoltage << " mV; Vmin-aware "
              << "placement needs " << smart.requiredVoltage
              << " mV:\n";
    util::TablePrinter placement({"task", "core", "cell Vmin (mV)"});
    for (const auto &p : smart.placements)
        placement.addRow(
            {p.workloadId, std::to_string(p.core),
             std::to_string(
                 report.cell(p.workloadId, p.core).analysis.vmin)});
    placement.print(std::cout);

    // The Figure 9 ladder for the smart placement.
    const TradeoffExplorer explorer(report, 760);
    const auto ladder = explorer.ladder(smart.placements);

    std::cout << "\nfrequency/voltage ladder (Figure 9):\n";
    util::TablePrinter steps({"slowed PMDs", "voltage (mV)",
                              "performance", "power",
                              "savings"});
    for (const auto &point : ladder)
        steps.addRow(
            {std::to_string(point.slowedPmds),
             std::to_string(point.voltage),
             util::formatDouble(100.0 * point.performanceRel, 1) +
                 "%",
             util::formatDouble(100.0 * point.powerRel, 1) + "%",
             util::formatDouble(point.savingsPercent(), 1) + "%"});
    steps.print(std::cout);

    std::cout << "\nreading: each step moves the weakest remaining "
                 "PMD to the divided clock,\nletting the shared "
                 "voltage domain drop to the next-worst cell's "
                 "Vmin.\n";
    return 0;
}
