/**
 * @file
 * Component-directed self-tests (paper section 3.4): stress each
 * cache level, the ALU and the FPU separately and compare where
 * SDCs appear versus where the machine crashes. On the X-Gene 2 the
 * ALU/FPU tests fail (SDCs) at much higher voltages than the cache
 * tests crash — evidence that timing paths, not SRAM cells, limit
 * undervolting.
 *
 *   ./build/examples/selftest_stress --core 0
 */

#include <iostream>

#include "core/framework.hh"
#include "sim/platform.hh"
#include "util/cli.hh"
#include "util/table.hh"
#include "workloads/selftest.hh"

using namespace vmargin;

int
main(int argc, char **argv)
{
    util::CliParser cli("selftest_stress",
                        "component stress tests (section 3.4)");
    cli.addOption("chip", "TTT", "chip corner");
    cli.addOption("core", "0", "core under test");
    cli.addOption("campaigns", "6", "campaign repetitions");
    if (!cli.parse(argc, argv))
        return 1;

    const auto core = static_cast<CoreId>(cli.intValue("core"));
    sim::Platform platform(sim::XGene2Params{},
                           sim::cornerFromName(cli.value("chip")),
                           1);
    CharacterizationFramework framework(&platform);

    FrameworkConfig config;
    config.workloads = wl::selfTestSuite();
    config.cores = {core};
    config.campaigns = static_cast<int>(cli.intValue("campaigns"));
    config.startVoltage = 950;
    config.endVoltage = 780; // cache arrays die far below the rest

    std::cout << "running cache fill/flip, ALU and FPU self-tests "
                 "on core "
              << core << " of " << platform.chip().name()
              << "...\n\n";
    const auto report = framework.characterize(config);

    util::TablePrinter table({"self-test", "first abnormal (mV)",
                              "crash (mV)", "unsafe width (mV)"});
    for (const auto &w : config.workloads) {
        const auto &analysis = report.cell(w.id(), core).analysis;
        table.addRow(
            {w.id(),
             std::to_string(analysis.highestAbnormalVoltage),
             std::to_string(analysis.highestCrashVoltage),
             std::to_string(analysis.unsafeWidth())});
    }
    table.print(std::cout);

    const auto &alu = report.cell("selftest-alu", core).analysis;
    const auto &l2 = report.cell("selftest-l2", core).analysis;
    std::cout
        << "\nconclusion: the ALU test misbehaves at "
        << alu.highestAbnormalVoltage << " mV while the L2 test "
        << "keeps running until " << l2.highestCrashVoltage
        << " mV.\nTiming paths fail first on this design; SRAM "
           "arrays hold their data far deeper — the reason SDCs "
           "appear before\ncorrected errors on the X-Gene 2 "
           "(opposite of the Itanium studies).\n";
    return 0;
}
