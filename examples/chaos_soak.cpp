/**
 * @file
 * Chaos soak: the supervised daemon under an aggressively faulty
 * management plane, next to an unsupervised control run.
 *
 * The CI gate for the margin supervisor: a reckless severity
 * tolerance on a management plane that NAKs writes, serves stale
 * sensor reads, hangs the SLIMpro and misses watchdog polls. The
 * soak FAILS (non-zero exit) when any crash goes un-recovered — the
 * daemon must serve every round and leave the machine responsive —
 * or when supervision does not cut the crash count. The measured
 * telemetry of both runs is written as JSON for artifact upload.
 *
 *   ./build/examples/chaos_soak --rounds 40 --json chaos_soak.json
 */

#include <fstream>
#include <iostream>
#include <sstream>

#include "core/predictor.hh"
#include "obs/metrics.hh"
#include "sched/daemon.hh"
#include "sim/platform.hh"
#include "util/cli.hh"
#include "util/strings.hh"
#include "workloads/spec.hh"

using namespace vmargin;

namespace
{

/** Far past the integration suite's hostile plan: roughly one in
 *  four management transactions misbehaves. */
sim::FaultPlanConfig
aggressivePlan(Seed seed)
{
    sim::FaultPlanConfig plan;
    plan.i2cWriteFailure = 0.25;
    plan.staleRead = 0.10;
    plan.managementHang = 0.005;
    plan.watchdogMiss = 0.10;
    plan.seed = seed;
    return plan;
}

/** One soak session on its own faulted platform. */
sched::DaemonResult
soak(const CharacterizationReport &report,
     const std::vector<WorkloadCounters> &profiles, double tolerance,
     int rounds, Seed seed, bool supervise,
     const std::string &telemetry_path)
{
    // Zero the registry per session so the streamed telemetry covers
    // exactly this soak, not the offline phase or the control run.
    obs::Registry::global().reset();

    sim::Platform platform(sim::XGene2Params{}, sim::ChipCorner::TTT,
                           1);
    platform.installFaultPlan(aggressivePlan(99));

    sched::GovernorConfig config;
    config.severityTolerance = tolerance;
    config.guardSteps = 0;
    sched::VoltageGovernor governor(config);
    for (CoreId core : {0, 4}) {
        const auto dataset =
            buildSeverityDataset(profiles, report, core);
        LinearPredictor predictor;
        predictor.fit(dataset.x, dataset.y, 5, 8);
        governor.setPredictor(core, std::move(predictor));
    }

    sched::GovernorDaemon daemon(&platform, std::move(governor));
    for (const auto &profile : profiles)
        daemon.registerProfile(profile);

    sched::DaemonOptions options;
    options.maxEpochs = 8;
    options.supervise = supervise;
    options.telemetryPath = telemetry_path;
    const sched::DaemonResult result = daemon.run(
        {{"bwaves/ref", 0}, {"namd/ref", 4}}, rounds, seed, options);

    if (!platform.responsive()) {
        std::cerr << "FAIL: "
                  << (supervise ? "supervised" : "unsupervised")
                  << " soak left the machine unresponsive — an "
                     "un-recovered crash\n";
        std::exit(1);
    }
    return result;
}

void
appendJson(std::ostringstream &os, const char *label,
           const sched::DaemonResult &result)
{
    os << '"' << label << "\":{"
       << "\"rounds\":" << result.rounds.size()
       << ",\"crashes\":" << result.crashes
       << ",\"watchdog_resets\":" << result.watchdogResets
       << ",\"abnormal_rounds\":" << result.abnormalRounds
       << ",\"fallback_rounds\":" << result.fallbackRounds
       << ",\"retries_exhausted\":"
       << result.fallbackRetriesExhausted
       << ",\"machine_unresponsive\":"
       << result.fallbackMachineUnresponsive
       << ",\"avg_mv\":" << result.averageVoltage
       << ",\"savings_pct\":" << result.energySavingsPercent
       << ",\"retries\":" << result.telemetry.retries
       << ",\"supervisor\":{"
       << "\"enabled\":"
       << (result.supervisor.enabled ? "true" : "false")
       << ",\"guard_steps\":" << result.supervisor.guardSteps
       << ",\"peak_guard_steps\":"
       << result.supervisor.peakGuardSteps << ",\"clamp\":\""
       << sched::clampReasonName(result.supervisor.clampReason)
       << "\",\"backoffs\":" << result.supervisor.backoffEvents
       << ",\"narrows\":" << result.supervisor.narrowEvents
       << ",\"quarantines\":" << result.supervisor.quarantines
       << ",\"readmissions\":" << result.supervisor.readmissions
       << ",\"canary_rounds\":" << result.supervisor.canaryRounds
       << ",\"canary_failures\":"
       << result.supervisor.canaryFailures
       << ",\"pinned_rounds\":" << result.supervisor.pinnedRounds
       << "}}";
}

} // namespace

int
main(int argc, char **argv)
{
    util::CliParser cli("chaos_soak",
                        "supervised daemon soak under aggressive "
                        "management-plane fault injection");
    cli.addOption("rounds", "40", "scheduling rounds per session");
    cli.addOption("tolerance", "17",
                  "severity tolerance (deliberately reckless)");
    cli.addOption("seed", "11", "session seed");
    cli.addOption("json", "", "telemetry JSON output path");
    cli.addOption("telemetry", "",
                  "append JSONL telemetry snapshots to this file "
                  "(supervised session only)");
    if (!cli.parse(argc, argv))
        return 1;

    const int rounds = static_cast<int>(cli.intValue("rounds"));
    const double tolerance = cli.doubleValue("tolerance");
    const Seed seed = static_cast<Seed>(cli.intValue("seed"));

    // Offline phase on a clean platform; the soak sessions each run
    // on their own faulted replica of the same chip.
    sim::Platform clean(sim::XGene2Params{}, sim::ChipCorner::TTT,
                        1);
    CharacterizationFramework framework(&clean);
    FrameworkConfig config;
    config.workloads = wl::headlineSuite();
    config.cores = {0, 4};
    config.campaigns = 6;
    config.maxEpochs = 8;
    config.startVoltage = 930;
    config.endVoltage = 840;
    std::cout << "offline: characterizing for the soak...\n";
    const auto report = framework.characterize(config);
    Profiler profiler(&clean);
    const auto profiles =
        profiler.profileSuite(wl::headlineSuite(), 0, 8);

    std::cout << "soak: " << rounds << " rounds at tolerance "
              << tolerance << " under aggressive faults\n\n";
    // Only the supervised session streams telemetry: the control run
    // would interleave its snapshots into the same JSONL file.
    const auto unsupervised =
        soak(report, profiles, tolerance, rounds, seed, false, "");
    const auto supervised =
        soak(report, profiles, tolerance, rounds, seed, true,
             cli.value("telemetry"));

    std::cout << "unsupervised control:\n"
              << formatDaemonSummary(unsupervised) << '\n'
              << "supervised:\n"
              << formatDaemonSummary(supervised);

    // The gate: every round served, and supervision must not lose
    // to the control run on crashes.
    bool ok = true;
    if (supervised.rounds.size() != static_cast<size_t>(rounds) ||
        !supervised.complete) {
        std::cerr << "FAIL: supervised soak served "
                  << supervised.rounds.size() << "/" << rounds
                  << " rounds\n";
        ok = false;
    }
    if (unsupervised.crashes > 0 &&
        supervised.crashes >= unsupervised.crashes) {
        std::cerr << "FAIL: supervision did not cut crashes ("
                  << supervised.crashes << " vs "
                  << unsupervised.crashes << " unsupervised)\n";
        ok = false;
    }

    const std::string json_path = cli.value("json");
    if (!json_path.empty()) {
        std::ostringstream os;
        os << "{\"soak\":\"chaos\",\"rounds\":" << rounds
           << ",\"tolerance\":" << tolerance << ",\"seed\":" << seed
           << ',';
        appendJson(os, "unsupervised", unsupervised);
        os << ',';
        appendJson(os, "supervised", supervised);
        os << ",\"pass\":" << (ok ? "true" : "false") << "}";
        std::ofstream out(json_path);
        out << os.str() << '\n';
        std::cout << "\ntelemetry written to " << json_path << '\n';
    }

    if (!ok)
        return 1;
    std::cout << "\nPASS: zero un-recovered crashes; supervision "
                 "held the line\n";
    return 0;
}
