/**
 * @file
 * Prediction walkthrough (paper Figure 6): characterize, profile the
 * PMU counters at nominal conditions, select features with RFE,
 * train the linear severity model and evaluate it against the naive
 * baseline — then use the model as an online predictor for a
 * workload it has never seen.
 *
 *   ./build/examples/predict_severity --core 0 --keep 5
 */

#include <iostream>

#include "core/predictor.hh"
#include "sim/platform.hh"
#include "util/cli.hh"
#include "util/strings.hh"
#include "util/table.hh"
#include "workloads/spec.hh"

using namespace vmargin;

int
main(int argc, char **argv)
{
    util::CliParser cli("predict_severity",
                        "train and evaluate the severity predictor");
    cli.addOption("chip", "TTT", "chip corner");
    cli.addOption("core", "0", "core whose severity is modelled");
    cli.addOption("keep", "5", "features kept by RFE");
    cli.addOption("campaigns", "10", "campaign repetitions");
    cli.addOption("holdout", "mcf",
                  "workload excluded from training and predicted "
                  "afterwards");
    if (!cli.parse(argc, argv))
        return 1;

    const auto core = static_cast<CoreId>(cli.intValue("core"));
    sim::Platform platform(sim::XGene2Params{},
                           sim::cornerFromName(cli.value("chip")),
                           1);

    // Phase 1: characterization (training ground truth).
    auto workloads = wl::headlineSuite();
    CharacterizationFramework framework(&platform);
    FrameworkConfig config;
    config.workloads = workloads;
    config.cores = {core};
    config.campaigns = static_cast<int>(cli.intValue("campaigns"));
    config.startVoltage = 930;
    config.endVoltage = 830;
    std::cout << "phase 1: characterizing " << workloads.size()
              << " benchmarks on core " << core << "...\n";
    const auto report = framework.characterize(config);

    // Phase 2: profiling at nominal conditions.
    std::cout << "phase 2: collecting the "
              << sim::kNumPmuEvents << " PMU counters...\n";
    Profiler profiler(&platform);
    const auto profiles = profiler.profileSuite(workloads, core);

    // Phase 3: feature selection + training; phase 4: evaluation.
    const auto dataset = buildSeverityDataset(profiles, report, core);
    EvaluationConfig eval_config;
    eval_config.keepFeatures =
        static_cast<size_t>(cli.intValue("keep"));
    std::cout << "phase 3/4: " << dataset.y.size()
              << " unsafe-region samples, RFE to "
              << eval_config.keepFeatures << " features, 80/20 "
              << "split...\n\n";
    const auto eval = evaluatePredictor(dataset, eval_config);

    util::TablePrinter metrics({"metric", "linear model", "naive"});
    metrics.addRow({"RMSE (severity units)",
                    util::formatDouble(eval.rmse, 2),
                    util::formatDouble(eval.naiveRmse, 2)});
    metrics.addRow({"R2", util::formatDouble(eval.r2, 3),
                    util::formatDouble(eval.naiveR2, 3)});
    metrics.print(std::cout);
    std::cout << "\nselected features:\n";
    for (const auto &name : eval.selectedFeatureNames)
        std::cout << "  " << name << '\n';

    // Online use: predict the holdout workload's severity curve.
    const auto holdout = wl::findWorkload(cli.value("holdout"));
    LinearPredictor predictor;
    predictor.fit(dataset.x, dataset.y, eval_config.keepFeatures, 4);
    const auto holdout_profile = profiler.profile(holdout, core);

    std::cout << "\npredicted severity for " << holdout.id()
              << " on core " << core << ":\n";
    util::TablePrinter curve({"voltage (mV)", "predicted severity"});
    for (MilliVolt v = 915; v >= 860; v -= 5) {
        stats::Vector sample;
        for (size_t e = 0; e < sim::kNumPmuEvents; ++e)
            sample.push_back(holdout_profile.perKilo(
                static_cast<sim::PmuEvent>(e)));
        sample.push_back(static_cast<double>(v));
        const double sev =
            std::max(0.0, predictor.predict(sample));
        curve.addRow({std::to_string(v),
                      util::formatDouble(sev, 2)});
    }
    curve.print(std::cout);
    return 0;
}
