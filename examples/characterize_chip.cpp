/**
 * @file
 * Full-chip characterization: the paper's Figure 4 workflow for one
 * chip. Sweeps every selected core over the voltage range for each
 * benchmark, classifies every run, and emits the framework's final
 * CSV (per-run rows) plus a per-cell summary.
 *
 *   ./build/examples/characterize_chip --chip TFF --cores 0,4 \
 *       --csv runs.csv
 */

#include <fstream>
#include <iostream>

#include "core/framework.hh"
#include "sim/platform.hh"
#include "util/cli.hh"
#include "util/config.hh"
#include "util/strings.hh"
#include "util/table.hh"
#include "workloads/spec.hh"

using namespace vmargin;

int
main(int argc, char **argv)
{
    util::CliParser cli("characterize_chip",
                        "characterize a whole chip (Figure 4 "
                        "workflow)");
    cli.addOption("chip", "TTT", "chip corner: TTT, TFF or TSS");
    cli.addOption("serial", "1", "chip serial number");
    cli.addOption("cores", "0,1,2,3,4,5,6,7",
                  "comma-separated core list");
    cli.addOption("campaigns", "10", "campaign repetitions");
    cli.addOption("frequency", "2400", "PMD frequency in MHz");
    cli.addOption("start", "930", "sweep start voltage (mV)");
    cli.addOption("end", "830", "sweep floor voltage (mV)");
    cli.addOption("csv", "", "write the per-run CSV to this file");
    cli.addOption("telemetry", "",
                  "append JSONL telemetry snapshots to this file");
    cli.addOption("config", "",
                  "key=value setup file overriding the options "
                  "above (see FrameworkConfig::fromConfig)");
    cli.addFlag("full-suite",
                "characterize all 40 workload samples instead of "
                "the 10 headline benchmarks");
    if (!cli.parse(argc, argv))
        return 1;

    sim::Platform platform(
        sim::XGene2Params{}, sim::cornerFromName(cli.value("chip")),
        static_cast<uint32_t>(cli.intValue("serial")));
    CharacterizationFramework framework(&platform);

    FrameworkConfig config;
    if (!cli.value("config").empty()) {
        config = FrameworkConfig::fromConfig(
            util::ConfigFile::fromFile(cli.value("config")));
    } else {
        config.workloads = cli.flag("full-suite")
                               ? wl::fullSuite()
                               : wl::headlineSuite();
        for (const auto &token :
             util::split(cli.value("cores"), ','))
            config.cores.push_back(static_cast<CoreId>(
                util::parseLong(util::trim(token), "--cores")));
        config.campaigns =
            static_cast<int>(cli.intValue("campaigns"));
        config.frequency =
            static_cast<MegaHertz>(cli.intValue("frequency"));
        config.startVoltage =
            static_cast<MilliVolt>(cli.intValue("start"));
        config.endVoltage =
            static_cast<MilliVolt>(cli.intValue("end"));
    }
    if (!cli.value("telemetry").empty())
        config.telemetryPath = cli.value("telemetry");

    std::cout << "chip " << platform.chip().name() << " at "
              << config.frequency << " MHz, cores";
    for (CoreId c : config.cores)
        std::cout << ' ' << c;
    std::cout << ", " << config.workloads.size() << " benchmarks x "
              << config.campaigns << " campaigns\n";

    const auto report = framework.characterize(config);

    util::TablePrinter table({"benchmark", "core", "Vmin (mV)",
                              "crash (mV)", "unsafe (mV)",
                              "guardband (mV)"});
    for (const auto &cell : report.cells)
        table.addRow({cell.workloadId, std::to_string(cell.core),
                      std::to_string(cell.analysis.vmin),
                      std::to_string(
                          cell.analysis.highestCrashVoltage),
                      std::to_string(cell.analysis.unsafeWidth()),
                      std::to_string(cell.analysis.guardband(980))});
    table.print(std::cout);

    std::cout << "\ntotal runs               : " << report.totalRuns
              << "\nwatchdog power cycles    : "
              << report.watchdogInterventions
              << "\nmachine boots            : "
              << platform.bootCount() << '\n';

    const std::string csv_path = cli.value("csv");
    if (!csv_path.empty()) {
        std::ofstream out(csv_path);
        if (!out) {
            std::cerr << "cannot write " << csv_path << '\n';
            return 1;
        }
        const std::string csv = report.toCsv();
        out.write(csv.data(),
                  static_cast<std::streamsize>(csv.size()));
        out.flush();
        if (!out) {
            std::cerr << "write to " << csv_path
                      << " failed while emitting " << csv.size()
                      << " bytes (disk full?)\n";
            return 1;
        }
        std::cout << "per-run CSV written to " << csv_path << '\n';
    }
    return 0;
}
