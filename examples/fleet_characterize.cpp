/**
 * @file
 * Fleet characterization: the paper's three-chip comparison (Table 3
 * / Section 5) in one invocation. Sweeps every chip of the fleet
 * over the same (workload, core) grid, then prints the per-corner
 * Vmin distribution, the per-corner guardband recommendation, the
 * chip-by-chip best-core comparison table, and the fleet-wide energy
 * savings rollup.
 *
 *   ./build/examples/fleet_characterize \
 *       --chip TTT --chip TFF:2 --chip TSS:3 --cores 0,4
 *
 * A journal path makes the whole fleet sweep kill-safe: re-running
 * the same command replays finished cells instead of re-measuring.
 */

#include <fstream>
#include <iostream>

#include "core/fleet.hh"
#include "sim/platform.hh"
#include "util/cli.hh"
#include "util/strings.hh"
#include "util/table.hh"
#include "workloads/spec.hh"

using namespace vmargin;

int
main(int argc, char **argv)
{
    util::CliParser cli("fleet_characterize",
                        "characterize a fleet of chips and compare "
                        "corners (three-chip table workflow)");
    cli.addRepeatable("chip",
                      "chip to include, CORNER[:serial] (default "
                      "fleet: TTT, TFF:2, TSS:3)");
    cli.addOption("cores", "0,2,4,6", "comma-separated core list");
    cli.addOption("campaigns", "3", "campaign repetitions");
    cli.addOption("frequency", "2400", "PMD frequency in MHz");
    cli.addOption("start", "930", "sweep start voltage (mV)");
    cli.addOption("end", "845", "sweep floor voltage (mV)");
    cli.addOption("workers", "0",
                  "worker threads (0 = one per hardware thread)");
    cli.addOption("journal", "",
                  "shared fleet journal for kill-safe resume");
    cli.addOption("report", "",
                  "write the full serialized fleet report here");
    cli.addOption("telemetry", "",
                  "append JSONL telemetry snapshots to this file");
    cli.addFlag("full-suite",
                "characterize all 40 workload samples instead of "
                "the 10 headline benchmarks");
    if (!cli.parse(argc, argv))
        return 1;

    std::vector<std::string> chip_specs = cli.values("chip");
    if (chip_specs.empty())
        chip_specs = {"TTT", "TFF:2", "TSS:3"};

    FleetConfig config;
    config.chips = parseFleetSpec(chip_specs);
    config.framework.workloads = cli.flag("full-suite")
                                     ? wl::fullSuite()
                                     : wl::headlineSuite();
    for (const auto &token : util::split(cli.value("cores"), ','))
        config.framework.cores.push_back(static_cast<CoreId>(
            util::parseLong(util::trim(token), "--cores")));
    config.framework.campaigns =
        static_cast<int>(cli.intValue("campaigns"));
    config.framework.frequency =
        static_cast<MegaHertz>(cli.intValue("frequency"));
    config.framework.startVoltage =
        static_cast<MilliVolt>(cli.intValue("start"));
    config.framework.endVoltage =
        static_cast<MilliVolt>(cli.intValue("end"));
    config.framework.workers =
        static_cast<int>(cli.intValue("workers"));
    config.framework.journalPath = cli.value("journal");
    config.framework.telemetryPath = cli.value("telemetry");

    std::cout << "fleet of " << config.chips.size() << " chips:";
    for (const ChipRef &chip : config.canonicalChips())
        std::cout << ' ' << chip.name();
    std::cout << " at " << config.framework.frequency << " MHz, "
              << config.framework.workloads.size()
              << " benchmarks x " << config.framework.cores.size()
              << " cores x " << config.framework.campaigns
              << " campaigns per chip\n\n";

    sim::Platform platform(sim::XGene2Params{}, sim::ChipCorner::TTT,
                           1);
    FleetExecutor executor(&platform);
    const FleetReport fleet = executor.run(config);

    if (!fleet.complete) {
        std::cout << "cell budget exhausted before the fleet "
                     "finished; re-run with the same --journal to "
                     "continue\n";
        return 0;
    }

    util::TablePrinter corners({"corner", "chips", "cells",
                                "best Vmin", "worst Vmin",
                                "guardband (mV)", "savings (%)"});
    for (const CornerSummary &s : fleet.cornerSummaries())
        corners.addRow({sim::cornerName(s.corner),
                        std::to_string(s.chips),
                        std::to_string(s.cells),
                        std::to_string(s.bestVmin),
                        std::to_string(s.worstVmin),
                        std::to_string(s.guardbandMv),
                        util::formatDouble(s.savingsPercent, 1)});
    corners.print(std::cout);

    std::cout << "\nbest-core Vmin per workload (the paper's "
                 "chip-to-chip comparison):\n"
              << fleet.comparisonCsv()
              << "\nfleet-wide energy savings at the safe floor: "
              << util::formatDouble(fleet.fleetSavingsPercent(), 1)
              << " %\n";

    const std::string report_path = cli.value("report");
    if (!report_path.empty()) {
        std::ofstream out(report_path);
        if (!out) {
            std::cerr << "cannot write " << report_path << '\n';
            return 1;
        }
        out << fleet.serialize();
        std::cout << "full fleet report written to " << report_path
                  << '\n';
    }
    return 0;
}
