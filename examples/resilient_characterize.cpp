/**
 * @file
 * Fault-tolerant characterization with journal resume.
 *
 * Runs the paper's characterization sweep on a machine whose
 * management plane is deliberately hostile — NAKed I2C setpoints,
 * stale sensor reads, silent hangs, missed watchdog power cycles —
 * and chops the sweep into sessions that are "killed" after a few
 * cells, resuming each time from the write-ahead journal with a
 * brand-new platform object. The final report is compared against an
 * uninterrupted fault-free sweep to show how little the injected
 * hostility moves the measured margins.
 *
 *   ./build/examples/resilient_characterize --i2c-fail 0.10 \
 *       --wd-miss 0.05 --cells-per-session 1
 */

#include <cstdio>
#include <iostream>

#include "core/framework.hh"
#include "core/resultstore.hh"
#include "sim/platform.hh"
#include "util/cli.hh"
#include "util/strings.hh"
#include "util/table.hh"
#include "workloads/spec.hh"

using namespace vmargin;

int
main(int argc, char **argv)
{
    util::CliParser cli("resilient_characterize",
                        "characterize under management-plane faults "
                        "with journal-resume sessions");
    cli.addOption("chip", "TTT", "chip corner: TTT, TFF or TSS");
    cli.addOption("serial", "1", "chip serial number");
    cli.addOption("cores", "0,4", "comma-separated core list");
    cli.addOption("campaigns", "3", "campaign repetitions");
    cli.addOption("i2c-fail", "0.10",
                  "P(SLIMpro setpoint transaction NAKed)");
    cli.addOption("wd-miss", "0.05",
                  "P(watchdog misses a needed power cycle)");
    cli.addOption("hang", "0.002",
                  "P(management transaction hangs the machine)");
    cli.addOption("stale", "0.05", "P(sensor read returns stale)");
    cli.addOption("fault-seed", "99", "fault plan seed");
    cli.addOption("cells-per-session", "1",
                  "cells measured before a session is 'killed'");
    cli.addOption("journal", "/tmp/vmargin_resilient.journal",
                  "write-ahead journal path");
    if (!cli.parse(argc, argv))
        return 1;

    const auto corner = sim::cornerFromName(cli.value("chip"));
    const auto serial =
        static_cast<uint32_t>(cli.intValue("serial"));

    sim::FaultPlanConfig faults;
    faults.i2cWriteFailure = cli.doubleValue("i2c-fail");
    faults.watchdogMiss = cli.doubleValue("wd-miss");
    faults.managementHang = cli.doubleValue("hang");
    faults.staleRead = cli.doubleValue("stale");
    faults.seed =
        static_cast<Seed>(cli.intValue("fault-seed"));
    faults.validate();

    FrameworkConfig config;
    config.workloads = {wl::findWorkload("bwaves/ref"),
                        wl::findWorkload("leslie3d/ref")};
    config.cores.clear();
    for (const auto &token : util::split(cli.value("cores"), ','))
        config.cores.push_back(static_cast<CoreId>(
            util::parseLong(util::trim(token), "--cores")));
    config.campaigns = static_cast<int>(cli.intValue("campaigns"));
    config.maxEpochs = 8;
    config.startVoltage = 930;
    config.endVoltage = 850;

    // Reference: uninterrupted fault-free sweep on an identical chip.
    std::cout << "reference sweep (no faults, single session)...\n";
    sim::Platform reference_platform(sim::XGene2Params{}, corner,
                                     serial);
    CharacterizationFramework reference_framework(
        &reference_platform);
    const auto reference =
        reference_framework.characterize(config);

    // Hostile sweep, chopped into sessions. Each session gets a
    // fresh platform object — as if the driving process had been
    // killed and restarted — and only the journal carries state.
    config.journalPath = cli.value("journal");
    config.cellBudget =
        static_cast<int>(cli.intValue("cells-per-session"));
    std::remove(config.journalPath.c_str());

    CharacterizationReport report;
    int sessions = 0;
    do {
        sim::Platform platform(sim::XGene2Params{}, corner, serial);
        platform.installFaultPlan(faults);
        CharacterizationFramework framework(&platform);
        report = framework.characterize(config);
        ++sessions;
        std::cout << "session " << sessions << ": "
                  << report.cells.size() << "/"
                  << config.workloads.size() * config.cores.size()
                  << " cells ("
                  << report.telemetry.journalReplays
                  << " replayed from journal)"
                  << (report.complete ? ", sweep complete" : "")
                  << '\n';
    } while (!report.complete);

    util::TablePrinter table({"benchmark", "core",
                              "Vmin faulty (mV)",
                              "Vmin fault-free (mV)", "delta (mV)"});
    for (const auto &cell : report.cells) {
        const auto &clean =
            reference.cell(cell.workloadId, cell.core);
        table.addRow(
            {cell.workloadId, std::to_string(cell.core),
             std::to_string(cell.analysis.vmin),
             std::to_string(clean.analysis.vmin),
             std::to_string(cell.analysis.vmin -
                            clean.analysis.vmin)});
    }
    table.print(std::cout);

    const auto &t = report.telemetry;
    std::cout << "\nrecovery telemetry over " << sessions
              << " sessions:"
              << "\n  transaction retries     : " << t.retries
              << "\n  backoff time (sim us)   : " << t.backoffUsTotal
              << "\n  extra watchdog polls    : " << t.watchdogRetries
              << "\n  measurements lost       : " << t.lostMeasurements
              << "\n  cells replayed          : " << t.journalReplays
              << "\n  watchdog power cycles   : "
              << report.watchdogInterventions << '\n';

    std::remove(config.journalPath.c_str());
    return 0;
}
